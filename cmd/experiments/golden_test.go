package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"io"
	"os"
	"path/filepath"
	"testing"

	mc "morphcache"
)

// The golden tests pin the structured report byte-for-byte: any change that
// moves a paper-visible number (throughputs, per-epoch telemetry,
// reconfiguration decisions) fails the comparison until the goldens are
// regenerated with -update and the diff is reviewed.
var (
	updateGolden = flag.Bool("update", false, "rewrite the golden report files with current output")
	goldenFull   = flag.Bool("golden-full", false, "also check the fig13 -quick golden (slow; the CI golden job passes this)")
)

// goldenCompare checks got against testdata/golden/<name>, rewriting the
// file when -update is set.
func goldenCompare(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", "golden", name)
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("updated %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden: %v (regenerate with: go test ./cmd/experiments -run TestGolden -update)", err)
	}
	if bytes.Equal(got, want) {
		return
	}
	line, gotLine, wantLine := firstDiffLine(got, want)
	t.Errorf("report differs from %s at line %d:\n  got:  %s\n  want: %s\n"+
		"if the change is intentional, regenerate with: go test ./cmd/experiments -run TestGolden -update",
		path, line, gotLine, wantLine)
}

// firstDiffLine locates the first differing line of two byte slices.
func firstDiffLine(a, b []byte) (line int, al, bl string) {
	as := bytes.Split(a, []byte("\n"))
	bs := bytes.Split(b, []byte("\n"))
	for i := 0; i < len(as) || i < len(bs); i++ {
		var av, bv []byte
		if i < len(as) {
			av = as[i]
		}
		if i < len(bs) {
			bv = bs[i]
		}
		if !bytes.Equal(av, bv) {
			return i + 1, string(av), string(bv)
		}
	}
	return 0, "", ""
}

// smallGoldenConfig is a deliberately tiny configuration (few epochs, short
// intervals, heavy scaling) so the small golden stays fast enough for the
// default `go test ./...` run, -race included.
func smallGoldenConfig() mc.Config {
	cfg := mc.LabConfig()
	cfg.Scale = 64
	cfg.Epochs = 4
	cfg.WarmupEpochs = 1
	cfg.EpochCycles = 200_000
	cfg.Telemetry = true
	return cfg
}

// TestGoldenReportSmall drives a small morph-vs-static-vs-PIPP sweep through
// the same memo -> report -> JSON pipeline `experiments -out json` uses and
// compares the document byte-for-byte against testdata/golden.
func TestGoldenReportSmall(t *testing.T) {
	resetState(io.Discard, io.Discard)
	defer resetState(os.Stdout, os.Stderr)
	jobsFlag = 2

	cfg := smallGoldenConfig()
	reportInit(cfg, false)
	specs := []mc.RunSpec{
		{Policy: "morph", Workload: mc.Mix("MIX 01")},
		{Policy: "(16:1:1)", Workload: mc.Mix("MIX 01")},
		{Policy: "(1:1:16)", Workload: mc.Mix("MIX 01")},
		{Policy: "pipp", Workload: mc.Mix("MIX 01")},
	}
	if err := prefetch(cfg, specs); err != nil {
		t.Fatal(err)
	}
	reportAddExperiment("golden-small", "golden regression fixture", "")

	var buf bytes.Buffer
	if err := reportWriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	checkReportShape(t, buf.Bytes(), len(specs))
	goldenCompare(t, "report-small.json", buf.Bytes())
}

// TestGoldenReportFig13Quick pins the full `experiments -run fig13 -quick
// -out json` document — the paper's headline figure. It is slow (~1-2 min),
// so it only runs when the CI golden job passes -golden-full.
func TestGoldenReportFig13Quick(t *testing.T) {
	if !*goldenFull {
		t.Skip("fig13 -quick golden is slow; run with -golden-full (the CI golden job does)")
	}
	defer resetState(os.Stdout, os.Stderr)
	var out, errb bytes.Buffer
	if code := run([]string{"-run", "fig13", "-quick", "-out", "json"}, &out, &errb); code != 0 {
		t.Fatalf("run exited %d: %s", code, errb.String())
	}
	checkReportShape(t, out.Bytes(), 24)
	goldenCompare(t, "fig13-quick.json", out.Bytes())
}

// checkReportShape validates the document independently of the golden bytes,
// so a freshly -update'd golden is still checked for the properties the
// schema promises: the declared schema tag, the expected run count, and at
// least one MorphCache run carrying epoch records and a reconfiguration
// event with its ACFV decision inputs.
func checkReportShape(t *testing.T, doc []byte, wantRuns int) {
	t.Helper()
	var rep reportDoc
	if err := json.Unmarshal(doc, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if rep.Schema != reportSchema {
		t.Errorf("schema = %q, want %q", rep.Schema, reportSchema)
	}
	if len(rep.Runs) != wantRuns {
		t.Errorf("report has %d runs, want %d", len(rep.Runs), wantRuns)
	}
	morphEvents := 0
	for _, r := range rep.Runs {
		if r.Telemetry == nil {
			continue
		}
		if len(r.Telemetry.Epochs) == 0 {
			t.Errorf("run %s has telemetry but no epoch records", r.Key)
		}
		if r.Policy == "MorphCache" {
			morphEvents += len(r.Telemetry.Reconfigs)
			for _, ev := range r.Telemetry.Reconfigs {
				if ev.Op != "merge" && ev.Op != "split" {
					t.Errorf("run %s: reconfig op %q", r.Key, ev.Op)
				}
				if ev.Rule == "" {
					t.Errorf("run %s: reconfig event without a rule: %+v", r.Key, ev)
				}
			}
		}
	}
	if morphEvents == 0 {
		t.Error("no MorphCache run recorded any reconfiguration event")
	}
}

// TestMain lets the golden flags parse before tests run.
func TestMain(m *testing.M) {
	flag.Parse()
	os.Exit(m.Run())
}
