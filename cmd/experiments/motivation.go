package main

import (
	"fmt"

	mc "morphcache"

	"morphcache/internal/textplot"
)

// fig2a reproduces Fig. 2(a): throughput of Mix 01 over 20 intervals under
// four static topologies, each epoch normalized to the all-shared baseline.
// The paper's claim: the best static configuration varies over time (the
// curves cross), spanning roughly 0.75–1.35 of the baseline.
func fig2a(cfg mc.Config, _ bool) error {
	w := mc.Mix("MIX 01")
	specs := []string{"(1:1:16)", "(4:4:1)", "(8:2:1)", "(1:16:1)"}
	jobs := []mc.RunSpec{{Policy: "(16:1:1)", Workload: w}}
	for _, s := range specs {
		jobs = append(jobs, mc.RunSpec{Policy: s, Workload: w})
	}
	if err := prefetch(cfg, jobs); err != nil {
		return err
	}
	base, err := staticResult(cfg, "(16:1:1)", w)
	if err != nil {
		return err
	}
	series := make(map[string][]float64)
	for _, s := range specs {
		r, err := staticResult(cfg, s, w)
		if err != nil {
			return err
		}
		series[s] = r.EpochThroughputs
	}
	fmt.Fprintln(outw, "per-epoch throughput normalized to (16:1:1), Mix 01:")
	header("epoch", specs)
	bestChanges := 0
	prevBest := ""
	for e := range base.EpochThroughputs {
		fmt.Fprintf(outw, "%-14d", e)
		best, bestV := "", 0.0
		for _, s := range specs {
			v := series[s][e] / base.EpochThroughputs[e]
			fmt.Fprintf(outw, " %10.3f", v)
			if v > bestV {
				best, bestV = s, v
			}
		}
		fmt.Fprintln(outw)
		if best != prevBest && prevBest != "" {
			bestChanges++
		}
		prevBest = best
	}
	fmt.Fprintf(outw, "\nbest static changed %d times across %d epochs (paper: the best configuration varies with time)\n",
		bestChanges, len(base.EpochThroughputs))

	var plot []textplot.Series
	for _, spec := range specs {
		pts := make([]float64, len(base.EpochThroughputs))
		for e := range pts {
			pts[e] = series[spec][e] / base.EpochThroughputs[e]
		}
		plot = append(plot, textplot.Series{Name: spec, Points: pts})
	}
	chart, err := textplot.Render(plot, 12)
	if err != nil {
		return err
	}
	fmt.Fprintln(outw, "\nnormalized throughput over epochs (cf. Fig. 2(a)):")
	fmt.Fprint(outw, chart)
	return nil
}

// fig2b reproduces Fig. 2(b): dedup and freqmine across static topologies,
// normalized to all-shared. Paper: dedup peaks at (4:4:1) (~1.18), freqmine
// at (1:16:1) (~1.15); fully private is worst for both (~0.82).
func fig2b(cfg mc.Config, _ bool) error {
	specs := []string{"(1:1:16)", "(4:4:1)", "(8:2:1)", "(1:16:1)"}
	apps := []string{"dedup", "freqmine"}
	var jobs []mc.RunSpec
	for _, app := range apps {
		w := mc.Parsec(app)
		jobs = append(jobs, mc.RunSpec{Policy: "(16:1:1)", Workload: w})
		for _, s := range specs {
			jobs = append(jobs, mc.RunSpec{Policy: s, Workload: w})
		}
	}
	if err := prefetch(cfg, jobs); err != nil {
		return err
	}
	header("app", specs)
	for _, app := range apps {
		w := mc.Parsec(app)
		base, err := staticResult(cfg, "(16:1:1)", w)
		if err != nil {
			return err
		}
		vals := make([]float64, len(specs))
		for i, s := range specs {
			r, err := staticResult(cfg, s, w)
			if err != nil {
				return err
			}
			vals[i] = r.Throughput
		}
		row(app, vals, base.Throughput)
	}
	fmt.Fprintln(outw, "\npaper reference (Fig. 2(b), normalized to (16:1:1)):")
	fmt.Fprintln(outw, "dedup          ~0.82       ~1.18       ~1.09       ~1.08")
	fmt.Fprintln(outw, "freqmine       ~0.80       ~1.05       ~1.07       ~1.15")
	fmt.Fprintln(outw, "key shape: private worst; an intermediate/shared-L3 topology best; no single topology best for both.")
	return nil
}
