package main

import (
	"fmt"

	mc "morphcache"

	"morphcache/internal/core"
	"morphcache/internal/hierarchy"
	"morphcache/internal/runner"
	"morphcache/internal/sim"
	"morphcache/internal/stats"
	"morphcache/internal/topology"
	"morphcache/internal/workload"
)

// measurePolicy samples every core's per-epoch L2/L3 active-footprint
// utilization (the controller's signal) without reconfiguring anything.
type measurePolicy struct {
	l2, l3 [][]float64 // [epoch][core]
}

func (m *measurePolicy) Name() string { return "measure" }

func (m *measurePolicy) EndEpoch(_ int, sys core.Machine) (int, bool) {
	n := sys.Cores()
	l2 := make([]float64, n)
	l3 := make([]float64, n)
	for c := 0; c < n; c++ {
		l2[c] = sys.CoresUtilization(hierarchy.L2, []int{c})
		l3[c] = sys.CoresUtilization(hierarchy.L3, []int{c})
	}
	m.l2 = append(m.l2, l2)
	m.l3 = append(m.l3, l3)
	return 0, false
}

// measureFootprints runs a workload on a private topology and returns the
// per-epoch per-core utilization samples.
func measureFootprints(cfg mc.Config, gens []*workload.Generator, cores int) (*measurePolicy, error) {
	p := cfg.Params()
	p.Cores = cores
	p.ChargeRemote = false
	sys, err := hierarchy.New(p, topology.AllPrivate(cores))
	if err != nil {
		return nil, err
	}
	mp := &measurePolicy{}
	eng, err := sim.New(simConfigOf(cfg), &sim.HierarchyTarget{Sys: sys, Policy: mp}, gens)
	if err != nil {
		return nil, err
	}
	eng.Run()
	return mp, nil
}

// temporal returns (mean, temporal σ) of one core's series.
func temporal(samples [][]float64, core int) (float64, float64) {
	series := make([]float64, len(samples))
	for e := range samples {
		series[e] = samples[e][core]
	}
	return stats.Mean(series), stats.StdDev(series)
}

// spatial returns the mean across epochs of the per-epoch std-dev across
// cores (Table 4's σs).
func spatial(samples [][]float64) float64 {
	per := make([]float64, len(samples))
	for e := range samples {
		per[e] = stats.StdDev(samples[e])
	}
	return stats.Mean(per)
}

// table4 closes the loop on the synthetic workload models: it measures each
// benchmark's active-footprint statistics on a private hierarchy and sets
// them against the Table 4 parameters that generated them. Measured values
// are in working-set units (they include the documented occupancy→working-
// set inflation), so the fidelity criterion is rank agreement: benchmarks
// the table calls big/variable must measure big/variable. The Pearson
// correlations across benchmarks summarize that agreement.
func table4(cfg mc.Config, quick bool) error {
	gcfg := workload.ScaledGenConfig(cfg.Scale)

	fmt.Fprintln(outw, "SPEC CPU 2006 (solo, private slice):")
	fmt.Fprintf(outw, "%-12s %22s %22s\n", "", "L2: table | measured", "L3: table | measured")
	fmt.Fprintf(outw, "%-12s %10s %11s %10s %11s\n", "benchmark", "ACF σt", "util σt", "ACF σt", "util σt")
	profiles := workload.SPECProfiles()
	if quick {
		profiles = profiles[:8]
	}
	// One measurement run per benchmark; each job builds its own generator
	// and private hierarchy, so the sweep parallelizes cleanly.
	specJobs := make([]runner.Job[*measurePolicy], len(profiles))
	for i, p := range profiles {
		p := p
		specJobs[i] = runner.Job[*measurePolicy]{
			Label: "table4 " + p.Name,
			Run: func() (*measurePolicy, error) {
				gens := []*workload.Generator{workload.NewGenerator(p, gcfg, 1, 0, cfg.Seed)}
				return measureFootprints(cfg, gens, 1)
			},
		}
	}
	specMPs, err := runner.Run(runCtx, specJobs, runner.Options{Workers: jobCount(), Progress: runnerProgress})
	if err != nil {
		return err
	}
	var tabL2, tabL3, meaL2, meaL3 []float64
	for i, p := range profiles {
		mp := specMPs[i]
		m2, s2 := temporal(mp.l2, 0)
		m3, s3 := temporal(mp.l3, 0)
		fmt.Fprintf(outw, "%-12s %5.2f %4.2f %5.2f %5.2f %5.2f %4.2f %5.2f %5.2f\n",
			p.Name, p.L2ACF, p.L2SigmaT, m2, s2, p.L3ACF, p.L3SigmaT, m3, s3)
		tabL2 = append(tabL2, p.L2ACF)
		tabL3 = append(tabL3, p.L3ACF)
		meaL2 = append(meaL2, m2)
		meaL3 = append(meaL3, m3)
	}
	fmt.Fprintf(outw, "cross-benchmark correlation table-vs-measured: L2 %.2f, L3 %.2f\n",
		stats.Correlation(tabL2, meaL2), stats.Correlation(tabL3, meaL3))

	fmt.Fprintln(outw, "\nPARSEC (16 threads, private slices):")
	fmt.Fprintf(outw, "%-14s %28s %28s\n", "", "L2: table | measured", "L3: table | measured")
	fmt.Fprintf(outw, "%-14s %13s %14s %13s %14s\n", "benchmark", "ACF σt σs", "util σt σs", "ACF σt σs", "util σt σs")
	papps := workload.PARSECProfiles()
	if quick {
		papps = papps[:4]
	}
	parsecJobs := make([]runner.Job[*measurePolicy], len(papps))
	for i, p := range papps {
		p := p
		parsecJobs[i] = runner.Job[*measurePolicy]{
			Label: "table4 " + p.Name,
			Run: func() (*measurePolicy, error) {
				gens := workload.ParsecGenerators(p, cfg.Cores, gcfg, cfg.Seed)
				return measureFootprints(cfg, gens, cfg.Cores)
			},
		}
	}
	parsecMPs, err := runner.Run(runCtx, parsecJobs, runner.Options{Workers: jobCount(), Progress: runnerProgress})
	if err != nil {
		return err
	}
	var ptab3, pmea3 []float64
	for i, p := range papps {
		mp := parsecMPs[i]
		var m2s, s2s, m3s, s3s []float64
		for c := 0; c < cfg.Cores; c++ {
			m2, s2 := temporal(mp.l2, c)
			m3, s3 := temporal(mp.l3, c)
			m2s, s2s = append(m2s, m2), append(s2s, s2)
			m3s, s3s = append(m3s, m3), append(s3s, s3)
		}
		fmt.Fprintf(outw, "%-14s %4.2f %4.2f %4.2f  %4.2f %4.2f %4.2f  %4.2f %4.2f %4.2f  %4.2f %4.2f %4.2f\n",
			p.Name,
			p.L2ACF, p.L2SigmaT, p.L2SigmaS, stats.Mean(m2s), stats.Mean(s2s), spatial(mp.l2),
			p.L3ACF, p.L3SigmaT, p.L3SigmaS, stats.Mean(m3s), stats.Mean(s3s), spatial(mp.l3))
		ptab3 = append(ptab3, p.L3ACF)
		pmea3 = append(pmea3, stats.Mean(m3s))
	}
	fmt.Fprintf(outw, "cross-benchmark correlation table-vs-measured (L3): %.2f\n",
		stats.Correlation(ptab3, pmea3))
	return nil
}
