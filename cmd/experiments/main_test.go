package main

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	mc "morphcache"
)

// TestRunUsageErrorsExitTwo checks that every malformed invocation exits 2
// without running anything.
func TestRunUsageErrorsExitTwo(t *testing.T) {
	defer resetState(os.Stdout, os.Stderr)
	cases := [][]string{
		{"-out", "xml", "-run", "fig13"}, // unknown output format
		{"-run", "nope"},                 // unknown experiment id
		{"fig13"},                        // stray positional (forgot -run)
		{"-run", "fig13", "-jobs", "0"},  // worker pool must be >= 1
		{"-run", ","},                    // selection resolves to nothing
		{"-definitely-not-a-flag"},       // flag parse error
	}
	for _, args := range cases {
		var out, errb bytes.Buffer
		if code := run(args, &out, &errb); code != 2 {
			t.Errorf("run(%q) = %d, want 2 (stderr: %s)", args, code, errb.String())
		}
	}
}

// TestRunListExitsZero checks the success path of the cheapest invocation.
func TestRunListExitsZero(t *testing.T) {
	defer resetState(os.Stdout, os.Stderr)
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("run(-list) = %d, want 0 (stderr: %s)", code, errb.String())
	}
	if !strings.Contains(out.String(), "fig13") {
		t.Errorf("listing does not mention fig13:\n%s", out.String())
	}
}

// withExperiment temporarily registers an extra experiment.
func withExperiment(t *testing.T, e experiment, f func()) {
	t.Helper()
	registry = append(registry, e)
	defer func() { registry = registry[:len(registry)-1] }()
	f()
}

// TestRunExperimentErrorExitsOne checks that a propagated experiment error
// turns into exit code 1.
func TestRunExperimentErrorExitsOne(t *testing.T) {
	defer resetState(os.Stdout, os.Stderr)
	boom := experiment{"boom", "always fails (test fixture)",
		func(cfg mc.Config, quick bool) error { return errors.New("kaput") }}
	withExperiment(t, boom, func() {
		var out, errb bytes.Buffer
		if code := run([]string{"-run", "boom"}, &out, &errb); code != 1 {
			t.Errorf("run(-run boom) = %d, want 1", code)
		}
		if !strings.Contains(errb.String(), "kaput") {
			t.Errorf("stderr does not carry the failure: %s", errb.String())
		}
	})
}

// TestRunSwallowedJobFailureExitsOne checks the batchFailures backstop: a
// job reported as failed through the progress callback must force exit 1
// even when the experiment itself swallows the error and returns nil.
func TestRunSwallowedJobFailureExitsOne(t *testing.T) {
	defer resetState(os.Stdout, os.Stderr)
	sneaky := experiment{"sneaky", "fails a job but returns nil (test fixture)",
		func(cfg mc.Config, quick bool) error {
			batchProgress(mc.JobEvent{Done: 1, Total: 1, Label: "doomed job",
				Err: errors.New("job died")})
			return nil
		}}
	withExperiment(t, sneaky, func() {
		var out, errb bytes.Buffer
		if code := run([]string{"-run", "sneaky"}, &out, &errb); code != 1 {
			t.Errorf("run(-run sneaky) = %d, want 1", code)
		}
		if !strings.Contains(errb.String(), "job(s) failed") {
			t.Errorf("stderr does not report the failed job count: %s", errb.String())
		}
	})
}

// TestRunInterruptedExitsOne checks the cancellation path end to end: with
// the signal context already cancelled (as after a ^C), batches stop
// dispatching, the experiment's error propagates, and run() exits 1 with
// the context error on stderr — never a silent success.
func TestRunInterruptedExitsOne(t *testing.T) {
	defer resetState(os.Stdout, os.Stderr)
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	baseCtx = cancelled
	defer func() { baseCtx = context.Background() }()
	var out, errb bytes.Buffer
	if code := run([]string{"-run", "fig13", "-quick"}, &out, &errb); code != 1 {
		t.Fatalf("run under a cancelled context = %d, want 1 (stderr: %s)", code, errb.String())
	}
	if !strings.Contains(errb.String(), context.Canceled.Error()) {
		t.Errorf("stderr does not carry the cancellation: %s", errb.String())
	}
}

// TestRunOutJSONEmitsReport runs the cheapest real experiment with -out json
// and checks stdout is pure JSON carrying the report schema, and that
// -epochlog lands a valid document at the given path.
func TestRunOutJSONEmitsReport(t *testing.T) {
	defer resetState(os.Stdout, os.Stderr)
	logPath := filepath.Join(t.TempDir(), "epochs.json")
	var out, errb bytes.Buffer
	args := []string{"-run", "table2", "-quick", "-out", "json", "-epochlog", logPath}
	if code := run(args, &out, &errb); code != 0 {
		t.Fatalf("run = %d, want 0 (stderr: %s)", code, errb.String())
	}
	s := out.String()
	if !strings.HasPrefix(s, "{") {
		t.Fatalf("stdout is not a JSON document:\n%.200s", s)
	}
	if !strings.Contains(s, reportSchema) {
		t.Errorf("report does not declare schema %q", reportSchema)
	}
	if !strings.Contains(s, `"id": "table2"`) {
		t.Errorf("report does not embed the experiment text section")
	}
	logged, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatalf("epoch log not written: %v", err)
	}
	if !strings.Contains(string(logged), epochLogSchema) {
		t.Errorf("epoch log does not declare schema %q", epochLogSchema)
	}
}
