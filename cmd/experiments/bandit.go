package main

import (
	"fmt"
	"strings"

	mc "morphcache"

	"morphcache/internal/workload"
)

// banditIdealFrac is the CI-gated fraction of the offline oracle envelope
// the bandit's whole-run throughput must reach on the phase-shift mix. The
// CI `bandit` job greps the experiment's output for the WARNING lines
// printed on violation.
const banditIdealFrac = 0.90

// banditArms is the zoo the experiment hands the meta-policy: the three
// policy families plus the paper's all-private baseline. On the phase-shift
// mix every fixed arm loses at least one phase (see workload.PhaseShiftMix):
// PIPP's thrash-resistant insertion wins the saturating phase by a wide
// margin but trails in the calm phase, where DSR leads; MorphCache and the
// baseline win neither. Only online switching can win the whole run.
var banditArms = []string{"morph", "pipp", "dsr", "(16:1:1)"}

// banditExp gates the bandit meta-policy (DESIGN.md §16) on the
// adversarial phase-shift mix: the bandit's whole-run throughput must beat
// every fixed arm's and reach banditIdealFrac of the offline oracle
// envelope over the arm set, with the regret series attached to the
// structured report.
func banditExp(cfg mc.Config, quick bool) error {
	// Bandit windows re-slice the run on fresh targets exactly like sampled
	// simulation does; the facade rejects the combination, so this
	// experiment is always a full simulation, -sampled or not (the flag's
	// help says so).
	cfg.Sampled = nil
	// The phase-shift square wave has period 24 absolute epochs and the
	// first two are warmup, so Epochs = 22 measures exactly one period
	// (one flip inside the measured region); the full run measures two
	// periods (three flips).
	cfg.Epochs = 46
	if quick {
		cfg.Epochs = 22
	}
	cfg.WarmupEpochs = 2

	bo := mc.DefaultBanditConfig()
	bo.Arms = append([]string(nil), banditArms...)
	// One-epoch windows: the finest switching granularity the resume
	// machinery offers, so the schedule can hug the phase boundaries.
	bo.WindowEpochs = 1
	// Each window replays three warmup epochs before its measured one.
	// Stateful arms need the warmth: PIPP's insertion/partition state takes
	// a few epochs to build, and with the default single warmup epoch its
	// windows score *below* the all-private baseline in the very phase its
	// full runs win by 20% — the bandit can neither learn nor realize the
	// arm's value. Three epochs puts every window at the warmth of an early
	// full-run epoch.
	bo.WindowWarmup = 3
	// The simulator's rewards are noiseless within a phase, so keep the
	// confidence bonus tiny and lean on the change-point reset (and the
	// sliding-window refresh backstop) for re-exploration: a wide bonus
	// just cycles through near-tied arms and pays their gaps for nothing.
	bo.Exploration = 0.02
	bcfg := cfg
	bcfg.Bandit = &bo

	w := mc.Mix(workload.PhaseShiftMixName)
	banditSpec := mc.RunSpec{Policy: "bandit", Workload: w, Config: &bcfg}
	specs := []mc.RunSpec{banditSpec}
	for _, arm := range banditArms {
		specs = append(specs, mc.RunSpec{Policy: arm, Workload: w})
	}
	if err := prefetch(cfg, specs); err != nil {
		return err
	}

	b, err := specResult(cfg, banditSpec)
	if err != nil {
		return err
	}
	rep := b.BanditReport
	if rep == nil {
		return fmt.Errorf("bandit: run returned no BanditReport")
	}

	var armRuns []*mc.Result
	for _, arm := range banditArms {
		r, err := specResult(cfg, mc.RunSpec{Policy: arm, Workload: w})
		if err != nil {
			return err
		}
		armRuns = append(armRuns, r)
	}
	series, _, idealMean, err := mc.IdealOffline(armRuns)
	if err != nil {
		return err
	}
	regret, err := mc.ComputeBanditRegret(b.EpochThroughputs, series)
	if err != nil {
		return err
	}
	// The structured report holds the same *BanditReport this run carries,
	// and encodes at process exit — attaching the regret here lands it in
	// the JSON document's run record too.
	rep.Regret = regret

	fmt.Fprintf(outw, "Online policy selection on %q: %d measured epochs, square-wave period %d,\n",
		workload.PhaseShiftMixName, cfg.Epochs, workload.PhaseShiftPeriod)
	fmt.Fprintf(outw, "%s/%s bandit, %d-epoch windows (gate: beat every fixed arm and reach %.0f%% of ideal).\n",
		rep.Strategy, rep.Reward, rep.WindowEpochs, 100*banditIdealFrac)
	for _, warn := range rep.Warnings {
		fmt.Fprintf(outw, "note: %s\n", warn)
	}
	fmt.Fprintln(outw)

	base := b.Throughput // fallback; the all-private baseline overrides below
	for i, arm := range banditArms {
		if arm == "(16:1:1)" {
			base = armRuns[i].Throughput
		}
	}
	header("policy", []string{"tput/base"})
	bestFixed, bestName := 0.0, ""
	for i, arm := range banditArms {
		row(arm, []float64{armRuns[i].Throughput}, base)
		if armRuns[i].Throughput > bestFixed {
			bestFixed, bestName = armRuns[i].Throughput, arm
		}
	}
	row("bandit", []float64{b.Throughput}, base)
	row("ideal", []float64{idealMean}, base)

	fmt.Fprintf(outw, "\narm schedule (%d windows, %d switches): %s\n",
		len(rep.Windows), rep.Switches, armSchedule(rep))
	fmt.Fprintf(outw, "regret: cumulative %.3f, mean oracle %.4f, mean realized %.4f, ratio %.3f\n",
		regret.Cumulative, regret.MeanOracle, regret.MeanRealized, regret.Ratio)
	fmt.Fprintf(outw, "bandit vs best fixed arm (%s): %+.2f%%; bandit / ideal: %.1f%% (gate %.0f%%)\n",
		bestName, 100*(b.Throughput/bestFixed-1), 100*b.Throughput/idealMean, 100*banditIdealFrac)
	if b.Throughput <= bestFixed {
		fmt.Fprintf(outw, "WARNING: bandit throughput %.4f did not beat best fixed arm %s (%.4f)\n",
			b.Throughput, bestName, bestFixed)
	}
	if b.Throughput < banditIdealFrac*idealMean {
		fmt.Fprintf(outw, "WARNING: bandit reached %.1f%% of the ideal envelope, gate is %.0f%%\n",
			100*b.Throughput/idealMean, 100*banditIdealFrac)
	}
	return nil
}

// armSchedule renders the window schedule as a compact run-length string,
// e.g. "morph x3 -> (16:1:1) x2 -> morph x4".
func armSchedule(rep *mc.BanditReport) string {
	var parts []string
	for i := 0; i < len(rep.Windows); {
		j := i
		for j < len(rep.Windows) && rep.Windows[j].Arm == rep.Windows[i].Arm {
			j++
		}
		parts = append(parts, fmt.Sprintf("%s x%d", rep.Windows[i].Arm, j-i))
		i = j
	}
	return strings.Join(parts, " -> ")
}
