// Command experiments regenerates every table and figure of the paper's
// evaluation (see DESIGN.md §3 for the experiment index and EXPERIMENTS.md
// for recorded results).
//
// Usage:
//
//	experiments -list
//	experiments -run fig13
//	experiments -run fig2a,fig2b,fig5
//	experiments -run all            # full suite (~30-45 minutes)
//	experiments -run fig13 -quick   # reduced epochs/workloads for smoke runs
//	experiments -run all -quick -out json > report.json
//	experiments -run fig13 -quick -epochlog epochs.json
//
// Every experiment prints the paper's reported numbers next to the
// measured ones. Absolute throughputs are not expected to match (the
// substrate is a calibrated synthetic simulator, not the authors' Simics
// testbed); the comparisons of interest are orderings, crossovers, and
// rough factors.
//
// With -out json|csv, stdout carries a machine-readable report instead of
// the text tables: every facade simulation the selected experiments
// performed, with per-epoch telemetry (see DESIGN.md §8 for the schema),
// plus each experiment's text rendering. The report is deterministic —
// byte-identical at every -jobs value — which is what the golden-report CI
// gate pins. -epochlog writes just the per-run epoch logs to a file while
// stdout keeps the default text tables.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"sync/atomic"
	"time"

	mc "morphcache"

	"morphcache/internal/runner"
)

// experiment is one reproducible artifact.
type experiment struct {
	id    string
	about string
	run   func(cfg mc.Config, quick bool) error
}

var registry = []experiment{
	{"fig2a", "per-epoch throughput of Mix 01 under static topologies (motivation)", fig2a},
	{"fig2b", "dedup vs freqmine across static topologies (motivation)", fig2b},
	{"fig5", "ACFV-vs-oracle correlation across vector widths and hashes", fig5},
	{"table2", "segmented bus arbiter area/delay and interconnect overhead", table2},
	{"table4", "closed-loop check of the synthetic benchmark footprints", table4},
	{"fig13", "MorphCache vs static topologies, 12 SPEC mixes", fig13},
	{"fig14", "weighted and fair speedup vs the best static topology", fig14},
	{"fig15", "MorphCache vs the ideal offline scheme", fig15},
	{"fig16", "MorphCache vs static topologies, PARSEC", fig16},
	{"fig17", "MorphCache vs PIPP and DSR", fig17},
	{"recon", "reconfiguration counts and asymmetric-configuration share (§2.4)", recon},
	{"qos", "MSAT throttling / QoS (§5.3)", qos},
	{"sens", "sensitivity to cache sizes, associativity, core count (§5.4)", sens},
	{"ext", "arbitrary group sizes and non-neighbor sharing (§5.5)", ext},
	{"energy", "segmented-bus energy quantification (§7 future work)", energyExp},
	{"xbar", "segmented bus vs crossbar interconnect trade-off (§3.1)", xbar},
	{"seeds", "seed-robustness of the headline Fig. 13 gain", seeds},
	{"interval", "reconfiguration-interval sweep (§4 epoch choice)", interval},
	{"faults", "fault injection: graceful degradation vs no-degradation strawman (§9)", faultsExp},
	{"sampled", "sampled simulation: reconstruction error vs full runs per mix (§13)", sampledExp},
	{"bandit", "online policy selection: bandit meta-policy vs fixed arms and the oracle (§16)", banditExp},
}

// outw is the destination of every experiment's table output. It is stdout
// by default; with -out set, run() points it at a per-experiment buffer so
// the text lands inside the structured report and stdout stays pure JSON
// or CSV.
var outw io.Writer = os.Stdout

// errw is the diagnostics stream (progress, timings, errors).
var errw io.Writer = os.Stderr

// jobsFlag is the worker-pool size every batch in this process uses; set in
// run from -jobs, defaulting to GOMAXPROCS. -jobs 1 restores strictly
// sequential execution. Report output on stdout is byte-identical at every
// value (per-job progress goes to stderr).
var jobsFlag = runtime.GOMAXPROCS(0)

// jobCount returns the configured worker-pool size.
func jobCount() int { return jobsFlag }

// runCtx is the context every worker pool in this process observes. run()
// arms it with SIGINT handling so an interrupt stops dispatching jobs and
// the process exits non-zero instead of hanging on a long sweep.
var runCtx context.Context = context.Background()

// baseCtx is the parent run() hangs the signal context on. Tests swap in a
// cancelled context to exercise the interruption exit path without raising
// a real SIGINT against the test process.
var baseCtx = context.Background()

// batchFailures counts failed jobs across every batch of the invocation.
// Experiments are expected to propagate job errors, but the process must
// exit non-zero even if one swallows them — a red job in the stderr log
// must never pair with exit 0 (atomic: progress callbacks are serial per
// batch, but belt and braces is cheap here).
var batchFailures atomic.Int64

// batchProgress prints one per-job timing line to stderr as facade batch
// jobs complete (observability for long sweeps; stdout stays clean).
func batchProgress(ev mc.JobEvent) {
	status := ""
	if ev.Err != nil {
		status = " FAILED: " + ev.Err.Error()
		batchFailures.Add(1)
	}
	fmt.Fprintf(errw, "experiments: [%d/%d] %s (%s)%s\n",
		ev.Done, ev.Total, ev.Label, ev.Elapsed.Round(time.Millisecond), status)
}

// runnerProgress is batchProgress for direct internal/runner batches (solo
// IPC references, custom-hierarchy sweeps).
func runnerProgress(ev runner.Event) {
	status := ""
	if ev.Err != nil {
		status = " FAILED: " + ev.Err.Error()
		batchFailures.Add(1)
	}
	fmt.Fprintf(errw, "experiments: [%d/%d] %s (%s)%s\n",
		ev.Done, ev.Total, ev.Label, ev.Elapsed.Round(time.Millisecond), status)
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// resetState reinitializes the package-level caches and counters so run()
// is re-entrant (tests call it repeatedly in one process).
func resetState(stdout, stderr io.Writer) {
	outw, errw = stdout, stderr
	jobsFlag = runtime.GOMAXPROCS(0)
	runCtx = context.Background()
	batchFailures.Store(0)
	obsHub = nil
	progressFlag = false
	memoMu.Lock()
	memo = map[string]*mc.Result{}
	memoMu.Unlock()
	soloMu.Lock()
	soloMemo = map[string]float64{}
	soloMu.Unlock()
	reportReset()
}

// run is the testable entry point; it returns the process exit code
// (0 = success, 1 = experiment/job failure, 2 = usage error).
func run(args []string, stdout, stderr io.Writer) (code int) {
	resetState(stdout, stderr)
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		runList  = fs.String("run", "", "comma-separated experiment ids, or 'all'")
		list     = fs.Bool("list", false, "list experiments")
		quick    = fs.Bool("quick", false, "reduced configuration (smoke run)")
		seed     = fs.Uint64("seed", 1, "workload seed")
		jobs     = fs.Int("jobs", runtime.GOMAXPROCS(0), "simulation worker-pool size (1 = sequential; results are identical at any value)")
		outFmt   = fs.String("out", "", "emit a machine-readable report on stdout instead of text tables: json or csv")
		epochLog = fs.String("epochlog", "", "write per-run epoch telemetry (JSON) to this file")
		admin    = fs.String("admin", "", "serve the admin endpoint (/metrics, /jobs, /healthz, /debug/pprof) on this address, e.g. :9190 or 127.0.0.1:0")
		trace    = fs.String("trace", "", "write a Chrome trace-event JSON of simulator phases to this file (open in chrome://tracing)")
		progress = fs.Bool("progress", false, "print per-job start lines and a periodic batch-progress summary to stderr")
		sampledF = fs.Bool("sampled", false, "run every facade simulation in sampled mode with the default sampling parameters (DESIGN.md §13); the faults experiment ignores it, and the sampled validation experiment always compares against true full runs")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	// A stray positional argument ("experiments fig13" instead of
	// "-run fig13") must not fall through to the default listing and exit 0.
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "experiments: unexpected arguments %q (did you mean -run %s?)\n",
			fs.Args(), fs.Arg(0))
		return 2
	}
	if *outFmt != "" && *outFmt != "json" && *outFmt != "csv" {
		fmt.Fprintf(stderr, "experiments: -out must be json or csv (got %q)\n", *outFmt)
		return 2
	}
	if *list || *runList == "" {
		fmt.Fprintln(stdout, "experiments:")
		for _, e := range registry {
			fmt.Fprintf(stdout, "  %-7s %s\n", e.id, e.about)
		}
		return 0
	}
	if *jobs < 1 {
		fmt.Fprintf(stderr, "experiments: -jobs must be >= 1 (got %d)\n", *jobs)
		return 2
	}
	jobsFlag = *jobs

	// ^C cancels every subsequent batch: in-flight jobs are abandoned,
	// undispatched ones never start, and the run exits 1 with the context
	// error in the log instead of grinding through the remaining sweep.
	ctx, stopSignals := signal.NotifyContext(baseCtx, os.Interrupt)
	defer stopSignals()
	runCtx = ctx

	// Observability (-admin / -trace / -progress; DESIGN.md §10). The exit
	// summary is registered first so it prints last, after teardown has
	// drained the admin server and written the trace.
	invocationStart := time.Now()
	defer func() {
		fmt.Fprintf(stderr, "experiments: exit: %d job failure(s), elapsed %s\n",
			batchFailures.Load(), time.Since(invocationStart).Round(time.Millisecond))
	}()
	progressFlag = *progress
	obsTeardown, err := obsSetup(ctx, *admin, *trace, *progress)
	if err != nil {
		fmt.Fprintf(stderr, "experiments: %v\n", err)
		return 1
	}
	defer func() {
		// A failed trace write or server drain must not exit 0.
		if err := obsTeardown(); err != nil {
			fmt.Fprintf(stderr, "experiments: %v\n", err)
			if code == 0 {
				code = 1
			}
		}
	}()

	cfg := mc.LabConfig()
	cfg.Seed = *seed
	if *quick {
		cfg.Epochs = 8
		cfg.WarmupEpochs = 2
	}
	if *sampledF {
		so := mc.DefaultSampledConfig()
		cfg.Sampled = &so
	}
	// Either structured output enables per-run telemetry; the default text
	// path keeps it off so stdout stays byte-identical to earlier releases.
	collect := *outFmt != "" || *epochLog != ""
	if collect {
		cfg.Telemetry = true
		reportInit(cfg, *quick)
	}

	// Resolve the -run list. Empty ids (stray commas, trailing separators)
	// are dropped; if nothing is left, or any id is unknown, exit non-zero —
	// a selection that runs nothing must never look like success.
	want := map[string]bool{}
	for _, id := range strings.Split(*runList, ",") {
		if id = strings.TrimSpace(id); id != "" {
			want[id] = true
		}
	}
	if len(want) == 0 {
		fmt.Fprintf(stderr, "experiments: -run %q selects no experiments (use -list)\n", *runList)
		return 2
	}
	all := want["all"]
	known := map[string]bool{}
	for _, e := range registry {
		known[e.id] = true
	}
	for id := range want {
		if id != "all" && !known[id] {
			fmt.Fprintf(stderr, "experiments: unknown id %q (use -list)\n", id)
			return 2
		}
	}

	ran := 0
	for _, e := range registry {
		if !all && !want[e.id] {
			continue
		}
		var buf bytes.Buffer
		if collect {
			outw = &buf
		}
		fmt.Fprintf(outw, "\n==================== %s — %s ====================\n", e.id, e.about)
		start := time.Now()
		if err := e.run(cfg, *quick); err != nil {
			fmt.Fprintf(stderr, "experiments: %s: %v\n", e.id, err)
			return 1
		}
		if collect {
			reportAddExperiment(e.id, e.about, buf.String())
		}
		fmt.Fprintf(stderr, "experiments: %s finished in %s (-jobs %d)\n",
			e.id, time.Since(start).Round(time.Millisecond), jobsFlag)
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(stderr, "experiments: selection %q ran no experiments\n", *runList)
		return 1
	}
	if err := runCtx.Err(); err != nil {
		fmt.Fprintf(stderr, "experiments: interrupted: %v\n", err)
		return 1
	}
	if n := batchFailures.Load(); n > 0 {
		fmt.Fprintf(stderr, "experiments: %d job(s) failed\n", n)
		return 1
	}

	switch *outFmt {
	case "json":
		if err := reportWriteJSON(stdout); err != nil {
			fmt.Fprintf(stderr, "experiments: write JSON report: %v\n", err)
			return 1
		}
	case "csv":
		if err := reportWriteCSV(stdout); err != nil {
			fmt.Fprintf(stderr, "experiments: write CSV report: %v\n", err)
			return 1
		}
	}
	if *epochLog != "" {
		if err := reportWriteEpochLog(*epochLog); err != nil {
			fmt.Fprintf(stderr, "experiments: write epoch log: %v\n", err)
			return 1
		}
	}
	return 0
}

// --- small shared helpers ---------------------------------------------------

// staticSpecs is the comparison set of §5: the baseline plus four statics.
var staticSpecs = []string{"(16:1:1)", "(1:1:16)", "(4:4:1)", "(8:2:1)", "(1:16:1)"}

// mixNames returns the Table 5 mix names (a subset under -quick).
func mixNames(quick bool) []string {
	all := []string{"MIX 01", "MIX 02", "MIX 03", "MIX 04", "MIX 05", "MIX 06",
		"MIX 07", "MIX 08", "MIX 09", "MIX 10", "MIX 11", "MIX 12"}
	if quick {
		return []string{"MIX 01", "MIX 05", "MIX 08", "MIX 12"}
	}
	return all
}

// parsecNames returns the PARSEC applications (a subset under -quick).
func parsecNames(quick bool) []string {
	all := []string{"blackscholes", "bodytrack", "canneal", "dedup", "facesim",
		"ferret", "fluidanimate", "freqmine", "streamcluster", "swaptions", "vips", "x264"}
	if quick {
		return []string{"blackscholes", "dedup", "freqmine", "streamcluster"}
	}
	return all
}

// header prints a column header.
func header(first string, cols []string) {
	fmt.Fprintf(outw, "%-14s", first)
	for _, c := range cols {
		fmt.Fprintf(outw, " %10s", c)
	}
	fmt.Fprintln(outw)
}

// row prints one table row of values normalized to base.
func row(name string, vals []float64, base float64) {
	fmt.Fprintf(outw, "%-14s", name)
	for _, v := range vals {
		fmt.Fprintf(outw, " %10.3f", v/base)
	}
	fmt.Fprintln(outw)
}

// geomean of ratios.
func mean(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
