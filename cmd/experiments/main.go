// Command experiments regenerates every table and figure of the paper's
// evaluation (see DESIGN.md §3 for the experiment index and EXPERIMENTS.md
// for recorded results).
//
// Usage:
//
//	experiments -list
//	experiments -run fig13
//	experiments -run fig2a,fig2b,fig5
//	experiments -run all            # full suite (~30-45 minutes)
//	experiments -run fig13 -quick   # reduced epochs/workloads for smoke runs
//
// Every experiment prints the paper's reported numbers next to the
// measured ones. Absolute throughputs are not expected to match (the
// substrate is a calibrated synthetic simulator, not the authors' Simics
// testbed); the comparisons of interest are orderings, crossovers, and
// rough factors.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	mc "morphcache"

	"morphcache/internal/runner"
)

// experiment is one reproducible artifact.
type experiment struct {
	id    string
	about string
	run   func(cfg mc.Config, quick bool) error
}

var registry = []experiment{
	{"fig2a", "per-epoch throughput of Mix 01 under static topologies (motivation)", fig2a},
	{"fig2b", "dedup vs freqmine across static topologies (motivation)", fig2b},
	{"fig5", "ACFV-vs-oracle correlation across vector widths and hashes", fig5},
	{"table2", "segmented bus arbiter area/delay and interconnect overhead", table2},
	{"table4", "closed-loop check of the synthetic benchmark footprints", table4},
	{"fig13", "MorphCache vs static topologies, 12 SPEC mixes", fig13},
	{"fig14", "weighted and fair speedup vs the best static topology", fig14},
	{"fig15", "MorphCache vs the ideal offline scheme", fig15},
	{"fig16", "MorphCache vs static topologies, PARSEC", fig16},
	{"fig17", "MorphCache vs PIPP and DSR", fig17},
	{"recon", "reconfiguration counts and asymmetric-configuration share (§2.4)", recon},
	{"qos", "MSAT throttling / QoS (§5.3)", qos},
	{"sens", "sensitivity to cache sizes, associativity, core count (§5.4)", sens},
	{"ext", "arbitrary group sizes and non-neighbor sharing (§5.5)", ext},
	{"energy", "segmented-bus energy quantification (§7 future work)", energyExp},
	{"xbar", "segmented bus vs crossbar interconnect trade-off (§3.1)", xbar},
	{"seeds", "seed-robustness of the headline Fig. 13 gain", seeds},
	{"interval", "reconfiguration-interval sweep (§4 epoch choice)", interval},
}

// jobsFlag is the worker-pool size every batch in this process uses; set in
// main from -jobs, defaulting to GOMAXPROCS. -jobs 1 restores strictly
// sequential execution. Report output on stdout is byte-identical at every
// value (per-job progress goes to stderr).
var jobsFlag = runtime.GOMAXPROCS(0)

// jobCount returns the configured worker-pool size.
func jobCount() int { return jobsFlag }

// batchProgress prints one per-job timing line to stderr as facade batch
// jobs complete (observability for long sweeps; stdout stays clean).
func batchProgress(ev mc.JobEvent) {
	status := ""
	if ev.Err != nil {
		status = " FAILED: " + ev.Err.Error()
	}
	fmt.Fprintf(os.Stderr, "experiments: [%d/%d] %s (%s)%s\n",
		ev.Done, ev.Total, ev.Label, ev.Elapsed.Round(time.Millisecond), status)
}

// runnerProgress is batchProgress for direct internal/runner batches (solo
// IPC references, custom-hierarchy sweeps).
func runnerProgress(ev runner.Event) {
	status := ""
	if ev.Err != nil {
		status = " FAILED: " + ev.Err.Error()
	}
	fmt.Fprintf(os.Stderr, "experiments: [%d/%d] %s (%s)%s\n",
		ev.Done, ev.Total, ev.Label, ev.Elapsed.Round(time.Millisecond), status)
}

func main() {
	var (
		runList = flag.String("run", "", "comma-separated experiment ids, or 'all'")
		list    = flag.Bool("list", false, "list experiments")
		quick   = flag.Bool("quick", false, "reduced configuration (smoke run)")
		seed    = flag.Uint64("seed", 1, "workload seed")
		jobs    = flag.Int("jobs", runtime.GOMAXPROCS(0), "simulation worker-pool size (1 = sequential; results are identical at any value)")
	)
	flag.Parse()

	// A stray positional argument ("experiments fig13" instead of
	// "-run fig13") must not fall through to the default listing and exit 0.
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "experiments: unexpected arguments %q (did you mean -run %s?)\n",
			flag.Args(), flag.Arg(0))
		os.Exit(2)
	}
	if *list || *runList == "" {
		fmt.Println("experiments:")
		for _, e := range registry {
			fmt.Printf("  %-7s %s\n", e.id, e.about)
		}
		return
	}
	if *jobs < 1 {
		fmt.Fprintf(os.Stderr, "experiments: -jobs must be >= 1 (got %d)\n", *jobs)
		os.Exit(2)
	}
	jobsFlag = *jobs

	cfg := mc.LabConfig()
	cfg.Seed = *seed
	if *quick {
		cfg.Epochs = 8
		cfg.WarmupEpochs = 2
	}

	// Resolve the -run list. Empty ids (stray commas, trailing separators)
	// are dropped; if nothing is left, or any id is unknown, exit non-zero —
	// a selection that runs nothing must never look like success.
	want := map[string]bool{}
	for _, id := range strings.Split(*runList, ",") {
		if id = strings.TrimSpace(id); id != "" {
			want[id] = true
		}
	}
	if len(want) == 0 {
		fmt.Fprintf(os.Stderr, "experiments: -run %q selects no experiments (use -list)\n", *runList)
		os.Exit(2)
	}
	all := want["all"]
	known := map[string]bool{}
	for _, e := range registry {
		known[e.id] = true
	}
	for id := range want {
		if id != "all" && !known[id] {
			fmt.Fprintf(os.Stderr, "experiments: unknown id %q (use -list)\n", id)
			os.Exit(2)
		}
	}

	ran := 0
	for _, e := range registry {
		if !all && !want[e.id] {
			continue
		}
		fmt.Printf("\n==================== %s — %s ====================\n", e.id, e.about)
		start := time.Now()
		if err := e.run(cfg, *quick); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", e.id, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "experiments: %s finished in %s (-jobs %d)\n",
			e.id, time.Since(start).Round(time.Millisecond), jobsFlag)
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "experiments: selection %q ran no experiments\n", *runList)
		os.Exit(1)
	}
}

// --- small shared helpers ---------------------------------------------------

// staticSpecs is the comparison set of §5: the baseline plus four statics.
var staticSpecs = []string{"(16:1:1)", "(1:1:16)", "(4:4:1)", "(8:2:1)", "(1:16:1)"}

// mixNames returns the Table 5 mix names (a subset under -quick).
func mixNames(quick bool) []string {
	all := []string{"MIX 01", "MIX 02", "MIX 03", "MIX 04", "MIX 05", "MIX 06",
		"MIX 07", "MIX 08", "MIX 09", "MIX 10", "MIX 11", "MIX 12"}
	if quick {
		return []string{"MIX 01", "MIX 05", "MIX 08", "MIX 12"}
	}
	return all
}

// parsecNames returns the PARSEC applications (a subset under -quick).
func parsecNames(quick bool) []string {
	all := []string{"blackscholes", "bodytrack", "canneal", "dedup", "facesim",
		"ferret", "fluidanimate", "freqmine", "streamcluster", "swaptions", "vips", "x264"}
	if quick {
		return []string{"blackscholes", "dedup", "freqmine", "streamcluster"}
	}
	return all
}

// header prints a column header.
func header(first string, cols []string) {
	fmt.Printf("%-14s", first)
	for _, c := range cols {
		fmt.Printf(" %10s", c)
	}
	fmt.Println()
}

// row prints one table row of values normalized to base.
func row(name string, vals []float64, base float64) {
	fmt.Printf("%-14s", name)
	for _, v := range vals {
		fmt.Printf(" %10.3f", v/base)
	}
	fmt.Println()
}

// geomean of ratios.
func mean(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
