package main

import (
	"fmt"

	mc "morphcache"

	"morphcache/internal/stats"
)

// interval studies the reconfiguration-interval choice (§4: the paper picks
// 300M cycles, "similar to context-switch/thread scheduling interval", so
// reconfiguration cost is negligible and the ACF data is stable). Sweeping
// the scaled epoch length shows the same trade-off: too short and the
// footprint estimates are noisy (churn), too long and adaptation lags the
// workload phases.
func interval(cfg mc.Config, quick bool) error {
	names := mixNames(true)[:2]
	if quick {
		names = names[:1]
	}
	factors := []struct {
		label string
		mul   float64
	}{
		{"1/4x", 0.25}, {"1/2x", 0.5}, {"1x", 1}, {"2x", 2},
	}
	cols := make([]string, len(factors))
	for i, f := range factors {
		cols[i] = f.label
	}
	// One job per (mix, interval length, policy): the sweep configs differ
	// in EpochCycles/Epochs, which the memo keys on.
	cfgFor := func(mul float64) *mc.Config {
		c := cfg
		c.EpochCycles = uint64(float64(cfg.EpochCycles) * mul)
		c.Epochs = int(float64(cfg.Epochs) / mul)
		return &c
	}
	var jobs []mc.RunSpec
	for _, mn := range names {
		w := mc.Mix(mn)
		for _, f := range factors {
			c := cfgFor(f.mul)
			jobs = append(jobs,
				mc.RunSpec{Policy: "(16:1:1)", Workload: w, Config: c},
				mc.RunSpec{Policy: "morph", Workload: w, Config: c})
		}
	}
	if err := prefetch(cfg, jobs); err != nil {
		return err
	}
	header("mix", cols)
	means := make([][]float64, len(factors))
	for _, mn := range names {
		w := mc.Mix(mn)
		vals := make([]float64, len(factors))
		for i, f := range factors {
			c := *cfgFor(f.mul)
			base, err := staticResult(c, "(16:1:1)", w)
			if err != nil {
				return err
			}
			m, err := morphResult(c, w)
			if err != nil {
				return err
			}
			vals[i] = m.Throughput / base.Throughput
			means[i] = append(means[i], vals[i])
		}
		row(mn, vals, 1)
	}
	fmt.Fprint(outw, "\nmean MorphCache/baseline per interval length:")
	for i, f := range factors {
		fmt.Fprintf(outw, " %s=%.3f", f.label, stats.Mean(means[i]))
	}
	fmt.Fprintln(outw)
	fmt.Fprintln(outw, "(the default interval sits on the flat part of this curve; the paper's")
	fmt.Fprintln(outw, "300M-cycle choice makes the decision+switching cost negligible, §4)")
	return nil
}
