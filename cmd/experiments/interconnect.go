package main

import (
	"fmt"

	mc "morphcache"

	"morphcache/internal/bus"
	"morphcache/internal/core"
	"morphcache/internal/hierarchy"
	"morphcache/internal/runner"
	"morphcache/internal/sim"
	"morphcache/internal/stats"
	"morphcache/internal/topology"
)

// xbar quantifies the §3.1 interconnect trade-off the paper argues
// qualitatively: a crossbar gives every slice its own port (higher
// bandwidth — wide sharing stops paying the one-channel-per-group queueing
// of a bus), but costs quadratic area. The experiment reruns the all-shared
// static and MorphCache under both interconnects and prints the area bill.
func xbar(cfg mc.Config, quick bool) error {
	names := mixNames(quick)
	if len(names) > 4 {
		names = names[:4]
	}
	// Flatten the sweep into 4 labeled jobs per mix (shared/morph × bus/xbar)
	// so every run can execute concurrently; results come back in submission
	// order, so the table below is identical at any worker count.
	run := func(mn string, kind hierarchy.InterconnectKind, morph bool) (float64, error) {
		w := mc.Mix(mn)
		gens, err := w.Generators(cfg)
		if err != nil {
			return 0, err
		}
		p := cfg.Params()
		p.Interconnect = kind
		var target sim.Target
		if morph {
			p.ChargeRemote = true
			sys, err := hierarchy.New(p, topology.AllPrivate(p.Cores))
			if err != nil {
				return 0, err
			}
			target = &sim.HierarchyTarget{Sys: sys, Policy: core.New(cfg.Morph)}
		} else {
			p.ChargeRemote = false
			sys, err := hierarchy.New(p, topology.AllShared(p.Cores))
			if err != nil {
				return 0, err
			}
			target = &sim.HierarchyTarget{Sys: sys, Policy: sim.NopPolicy{Label: "(16:1:1)"}}
		}
		eng, err := sim.New(simConfigOf(cfg), target, gens)
		if err != nil {
			return 0, err
		}
		return eng.Run().Throughput(), nil
	}
	cases := []struct {
		name  string
		kind  hierarchy.InterconnectKind
		morph bool
	}{
		{"shared-bus", hierarchy.Bus, false},
		{"shared-xbar", hierarchy.Crossbar, false},
		{"morph-bus", hierarchy.Bus, true},
		{"morph-xbar", hierarchy.Crossbar, true},
	}
	var jobs []runner.Job[float64]
	for _, mn := range names {
		mn := mn
		for _, cse := range cases {
			cse := cse
			jobs = append(jobs, runner.Job[float64]{
				Label: mn + " " + cse.name,
				Run:   func() (float64, error) { return run(mn, cse.kind, cse.morph) },
			})
		}
	}
	vals, err := runner.Run(runCtx, jobs, runner.Options{Workers: jobCount(), Progress: runnerProgress})
	if err != nil {
		return err
	}
	header("mix", []string{"shared-bus", "shared-xbar", "morph-bus", "morph-xbar"})
	var sharedGain, morphGain []float64
	for i, mn := range names {
		sb, sx, mb, mx := vals[4*i], vals[4*i+1], vals[4*i+2], vals[4*i+3]
		row(mn, []float64{sb, sx, mb, mx}, sb)
		sharedGain = append(sharedGain, sx/sb)
		morphGain = append(morphGain, mx/mb)
	}
	tech := bus.DefaultTech()
	rep := bus.Characterize(tech, bus.DefaultFloorplan())
	treeArea := 2*rep.L2.TotalAreaUM2 + rep.L3.TotalAreaUM2
	xbarArea := bus.CrossbarAreaUM2(tech, 16) * 2 // one fabric per level
	fmt.Fprintf(outw, "\ncrossbar lifts the all-shared static by %+.1f%% and MorphCache by %+.1f%% on average\n",
		100*(stats.Mean(sharedGain)-1), 100*(stats.Mean(morphGain)-1))
	fmt.Fprintf(outw, "arbitration area: segmented-bus trees %.0f um^2 vs crossbars %.0f um^2 (%.0fx)\n",
		treeArea, xbarArea, xbarArea/treeArea)
	fmt.Fprintln(outw, "(the paper's §3.1 trade-off, quantified: the crossbar buys back the")
	fmt.Fprintln(outw, "bandwidth that penalizes wide sharing, at an order-of-magnitude area cost —")
	fmt.Fprintln(outw, "reconfigurable segmentation gets most of the benefit for a fraction of it)")
	return nil
}
