package main

import (
	"fmt"

	mc "morphcache"

	"morphcache/internal/bus"
	"morphcache/internal/core"
	"morphcache/internal/hierarchy"
	"morphcache/internal/sim"
	"morphcache/internal/stats"
	"morphcache/internal/topology"
)

// xbar quantifies the §3.1 interconnect trade-off the paper argues
// qualitatively: a crossbar gives every slice its own port (higher
// bandwidth — wide sharing stops paying the one-channel-per-group queueing
// of a bus), but costs quadratic area. The experiment reruns the all-shared
// static and MorphCache under both interconnects and prints the area bill.
func xbar(cfg mc.Config, quick bool) error {
	names := mixNames(quick)
	if len(names) > 4 {
		names = names[:4]
	}
	header("mix", []string{"shared-bus", "shared-xbar", "morph-bus", "morph-xbar"})
	var sharedGain, morphGain []float64
	for _, mn := range names {
		w := mc.Mix(mn)
		run := func(kind hierarchy.InterconnectKind, morph bool) (float64, error) {
			gens, err := w.Generators(cfg)
			if err != nil {
				return 0, err
			}
			p := cfg.Params()
			p.Interconnect = kind
			var target sim.Target
			if morph {
				p.ChargeRemote = true
				sys, err := hierarchy.New(p, topology.AllPrivate(p.Cores))
				if err != nil {
					return 0, err
				}
				target = &sim.HierarchyTarget{Sys: sys, Policy: core.New(cfg.Morph)}
			} else {
				p.ChargeRemote = false
				sys, err := hierarchy.New(p, topology.AllShared(p.Cores))
				if err != nil {
					return 0, err
				}
				target = &sim.HierarchyTarget{Sys: sys, Policy: sim.NopPolicy{Label: "(16:1:1)"}}
			}
			eng, err := sim.New(simConfigOf(cfg), target, gens)
			if err != nil {
				return 0, err
			}
			return eng.Run().Throughput(), nil
		}
		sb, err := run(hierarchy.Bus, false)
		if err != nil {
			return err
		}
		sx, err := run(hierarchy.Crossbar, false)
		if err != nil {
			return err
		}
		mb, err := run(hierarchy.Bus, true)
		if err != nil {
			return err
		}
		mx, err := run(hierarchy.Crossbar, true)
		if err != nil {
			return err
		}
		row(mn, []float64{sb, sx, mb, mx}, sb)
		sharedGain = append(sharedGain, sx/sb)
		morphGain = append(morphGain, mx/mb)
	}
	tech := bus.DefaultTech()
	rep := bus.Characterize(tech, bus.DefaultFloorplan())
	treeArea := 2*rep.L2.TotalAreaUM2 + rep.L3.TotalAreaUM2
	xbarArea := bus.CrossbarAreaUM2(tech, 16) * 2 // one fabric per level
	fmt.Printf("\ncrossbar lifts the all-shared static by %+.1f%% and MorphCache by %+.1f%% on average\n",
		100*(stats.Mean(sharedGain)-1), 100*(stats.Mean(morphGain)-1))
	fmt.Printf("arbitration area: segmented-bus trees %.0f um^2 vs crossbars %.0f um^2 (%.0fx)\n",
		treeArea, xbarArea, xbarArea/treeArea)
	fmt.Println("(the paper's §3.1 trade-off, quantified: the crossbar buys back the")
	fmt.Println("bandwidth that penalizes wide sharing, at an order-of-magnitude area cost —")
	fmt.Println("reconfigurable segmentation gets most of the benefit for a fraction of it)")
	return nil
}
