package main

import (
	"fmt"

	mc "morphcache"

	"morphcache/internal/core"
	"morphcache/internal/stats"
)

// recon reports the §2.4 reconfiguration statistics: how many merge/split
// operations MorphCache performs and how often the resulting configuration
// is asymmetric. The paper (at its 300M-cycle intervals over full runs)
// reports 5,248–12,176 reconfigurations for multiprogrammed workloads (avg
// 9,654) and 263–1,043 (avg 856) for multithreaded ones, with asymmetric
// outcomes in ~39% and ~54% of reconfiguring steps respectively; at this
// simulator's scaled interval count the comparable quantities are the
// per-interval reconfiguration rate and the asymmetric share.
func recon(cfg mc.Config, quick bool) error {
	var jobs []mc.RunSpec
	for _, mn := range mixNames(quick) {
		jobs = append(jobs, mc.RunSpec{Policy: "morph", Workload: mc.Mix(mn)})
	}
	for _, app := range parsecNames(quick) {
		jobs = append(jobs, mc.RunSpec{Policy: "morph", Workload: mc.Parsec(app)})
	}
	if err := prefetch(cfg, jobs); err != nil {
		return err
	}
	report := func(label string, names []string, mk func(string) mc.Workload) error {
		var rates, asymShare []float64
		var minR, maxR = 1 << 30, 0
		for _, n := range names {
			r, err := morphResult(cfg, mk(n))
			if err != nil {
				return err
			}
			if r.Reconfigurations < minR {
				minR = r.Reconfigurations
			}
			if r.Reconfigurations > maxR {
				maxR = r.Reconfigurations
			}
			rates = append(rates, float64(r.Reconfigurations)/float64(cfg.Epochs))
			if r.Reconfigurations > 0 {
				asymShare = append(asymShare, float64(r.AsymmetricSteps)/float64(minInt(r.Reconfigurations, cfg.Epochs)))
			}
		}
		fmt.Fprintf(outw, "%s: %.1f reconfigurations/interval (range %d..%d per run); asymmetric outcome share %.0f%%\n",
			label, stats.Mean(rates), minR, maxR, 100*stats.Mean(asymShare))
		return nil
	}
	if err := report("multiprogrammed", mixNames(quick), func(n string) mc.Workload { return mc.Mix(n) }); err != nil {
		return err
	}
	if err := report("multithreaded  ", parsecNames(quick), func(n string) mc.Workload { return mc.Parsec(n) }); err != nil {
		return err
	}
	fmt.Fprintln(outw, "\npaper reference: multiprogrammed avg 9,654 ops/run with 39% asymmetric;")
	fmt.Fprintln(outw, "multithreaded avg 856 ops/run with 54% asymmetric (full-length runs).")
	fmt.Fprintln(outw, "shape criteria: multiprogrammed reconfigures much more than multithreaded;")
	fmt.Fprintln(outw, "asymmetric configurations occur in a large fraction of steps.")
	return nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// qos reproduces §5.3: MSAT throttling. The QoS criterion is that no
// application drops below the performance of its fair share — each
// application on its own private slice *within the same mix* (the private
// (1:1:16) run), which isolates cache-policy damage from the fixed memory
// bandwidth everyone shares. The experiment compares the default
// merge-aggressive controller with the QoS-throttled one on the
// per-application minimum speedup versus that reference.
func qos(cfg mc.Config, quick bool) error {
	names := mixNames(quick)
	if len(names) > 4 && quick {
		names = names[:4]
	}
	qosOpts := core.DefaultOptions()
	qosOpts.QoS = true
	var jobs []mc.RunSpec
	for _, mn := range names {
		w := mc.Mix(mn)
		jobs = append(jobs,
			mc.RunSpec{Policy: "(1:1:16)", Workload: w},
			mc.RunSpec{Policy: "morph", Workload: w},
			mc.RunSpec{Policy: "morph", Workload: w, Morph: &qosOpts})
	}
	if err := prefetch(cfg, jobs); err != nil {
		return err
	}
	header("mix", []string{"minSU", "minSU-QoS", "thr", "thr-QoS"})
	var worst, worstQ []float64
	for _, mn := range names {
		w := mc.Mix(mn)
		fair, err := staticResult(cfg, "(1:1:16)", w)
		if err != nil {
			return err
		}
		alone := fair.PerCoreIPC
		base, err := morphResult(cfg, w)
		if err != nil {
			return err
		}
		qres, err := morphOptResult(cfg, qosOpts, w)
		if err != nil {
			return err
		}
		minSU := func(r *mc.Result) float64 {
			m := r.PerCoreIPC[0] / alone[0]
			for i := range r.PerCoreIPC {
				if su := r.PerCoreIPC[i] / alone[i]; su < m {
					m = su
				}
			}
			return m
		}
		a, b := minSU(base), minSU(qres)
		fmt.Fprintf(outw, "%-14s %10.3f %10.3f %10.3f %10.3f\n", mn, a, b, base.Throughput, qres.Throughput)
		worst = append(worst, a)
		worstQ = append(worstQ, b)
	}
	fmt.Fprintf(outw, "\nmean minimum per-app speedup vs fair share: %.3f default, %.3f with QoS throttling\n",
		stats.Mean(worst), stats.Mean(worstQ))
	fmt.Fprintln(outw, "shape criterion (§5.3): QoS throttling should raise the worst-case application")
	fmt.Fprintln(outw, "toward its fair-share performance at a modest aggregate-throughput cost.")
	fmt.Fprintln(outw, "storage overhead of the QoS scheme: two 4-byte registers per slice (8 B/slice).")
	return nil
}

// ext reproduces §5.5: relaxing the reconfiguration space. Allowing
// arbitrary (non-power-of-two) numbers of neighboring slices to share
// improved the paper's mixes by +3.6% on average; additionally allowing
// NON-neighboring cores to share degraded throughput by 7.1%, because the
// physical fabric must span every slice between the group's extremes.
func ext(cfg mc.Config, quick bool) error {
	names := mixNames(quick)
	if !quick && len(names) > 6 {
		names = names[:6]
	}
	arbOpts := core.DefaultOptions()
	arbOpts.AllowArbitrarySizes = true
	nonOpts := core.DefaultOptions()
	nonOpts.AllowArbitrarySizes = true
	nonOpts.AllowNonNeighbors = true
	var jobs []mc.RunSpec
	for _, mn := range names {
		w := mc.Mix(mn)
		jobs = append(jobs,
			mc.RunSpec{Policy: "morph", Workload: w},
			mc.RunSpec{Policy: "morph", Workload: w, Morph: &arbOpts},
			mc.RunSpec{Policy: "morph", Workload: w, Morph: &nonOpts})
	}
	if err := prefetch(cfg, jobs); err != nil {
		return err
	}
	header("mix", []string{"default", "arbitrary", "nonneigh"})
	var arb, non []float64
	for _, mn := range names {
		w := mc.Mix(mn)
		d, err := morphResult(cfg, w)
		if err != nil {
			return err
		}
		a, err := morphOptResult(cfg, arbOpts, w)
		if err != nil {
			return err
		}
		n, err := morphOptResult(cfg, nonOpts, w)
		if err != nil {
			return err
		}
		row(mn, []float64{d.Throughput, a.Throughput, n.Throughput}, d.Throughput)
		arb = append(arb, a.Throughput/d.Throughput)
		non = append(non, n.Throughput/d.Throughput)
	}
	fmt.Fprintf(outw, "\naverage vs default restricted sharing (measured | paper):\n")
	fmt.Fprintf(outw, "  arbitrary neighboring group sizes: %+6.1f%% | +3.6%%\n", 100*(stats.Mean(arb)-1))
	fmt.Fprintf(outw, "  non-neighbor sharing allowed:      %+6.1f%% | -7.1%%\n", 100*(stats.Mean(non)-1))
	return nil
}
