package main

import (
	"context"
	"fmt"
	"os"
	"time"

	mc "morphcache"

	"morphcache/internal/obs"
)

// obsHub is the invocation's observability hub — the metrics registry the
// admin endpoint scrapes, the /jobs tracker, and (with -trace) the span
// tracer. Nil unless -admin, -trace, or -progress asked for one; every
// consumer treats nil as "observability off".
var obsHub *obs.Hub

// progressFlag mirrors -progress: per-job start lines and the periodic
// batch-progress ticker on stderr.
var progressFlag bool

// progressInterval is the -progress ticker period (a variable so tests can
// shrink it).
var progressInterval = 2 * time.Second

// batchObserve returns the BatchOptions.Observe hook, or nil when
// observability is off so RunBatch takes its unobserved path.
func batchObserve() func(index int, label string) *obs.Observer {
	if obsHub == nil {
		return nil
	}
	return func(_ int, label string) *obs.Observer { return obsHub.Observer(label) }
}

// batchStarted prints one per-job start line to stderr under -progress
// (facade batches report starts through it; completions go through
// batchProgress as before).
func batchStarted(ev mc.JobEvent) {
	if !progressFlag {
		return
	}
	fmt.Fprintf(errw, "experiments: [start] %s\n", ev.Label)
}

// obsSetup arms observability per the flags: it builds the hub, starts the
// admin server and the -progress ticker, and returns a teardown that stops
// the ticker, writes the trace file, and drains the server. The teardown is
// safe to call exactly once; with no observability flags set it is a no-op
// and the hub stays nil.
func obsSetup(ctx context.Context, adminAddr, traceFile string, progress bool) (teardown func() error, err error) {
	if adminAddr == "" && traceFile == "" && !progress {
		return func() error { return nil }, nil
	}
	obsHub = obs.NewHub(obs.HubOptions{Shards: jobCount(), Trace: traceFile != ""})

	var srv *obs.Server
	if adminAddr != "" {
		admin := obs.NewAdmin(obsHub.Registry, obsHub.Jobs)
		if srv, err = obs.Serve(adminAddr, admin); err != nil {
			return nil, err
		}
		fmt.Fprintf(errw, "experiments: admin endpoint on http://%s (/metrics, /jobs, /healthz, /debug/pprof)\n", srv.Addr())
		// An interrupt flips /healthz to draining immediately, before the
		// batches wind down, so probes see the shutdown as it begins.
		go func() {
			<-ctx.Done()
			admin.SetHealthy(false)
		}()
	}

	stopTicker := startProgressTicker()
	return func() error {
		stopTicker()
		var firstErr error
		if traceFile != "" {
			if err := writeTrace(traceFile); err != nil {
				firstErr = err
			}
		}
		if srv != nil {
			sctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			if err := srv.Shutdown(sctx); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("admin shutdown: %w", err)
			}
		}
		return firstErr
	}, nil
}

// writeTrace dumps the collected spans as a Chrome trace-event document
// (load it in chrome://tracing or ui.perfetto.dev).
func writeTrace(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("write trace: %w", err)
	}
	if err := obsHub.Tracer.WriteJSON(f); err != nil {
		f.Close()
		return fmt.Errorf("write trace: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("write trace: %w", err)
	}
	fmt.Fprintf(errw, "experiments: trace written to %s\n", path)
	return nil
}

// startProgressTicker prints a periodic one-line batch summary to stderr
// while jobs run; the returned stop function ends it.
func startProgressTicker() (stop func()) {
	if !progressFlag || obsHub == nil {
		return func() {}
	}
	done := make(chan struct{})
	go func() {
		t := time.NewTicker(progressInterval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				v := obsHub.Jobs()
				fmt.Fprintf(errw, "experiments: progress: %d queued, %d running, %d done, %d failed (of %d)\n",
					v.Queued, v.Running, v.Done, v.Failed, v.Total)
			}
		}
	}()
	return func() { close(done) }
}
