package main

import (
	"fmt"

	mc "morphcache"

	"morphcache/internal/core"
	"morphcache/internal/hierarchy"
	"morphcache/internal/runner"
	"morphcache/internal/sim"
	"morphcache/internal/stats"
)

// sens reproduces the §5.4 sensitivity study. Paper findings: doubling the
// L2 slice size grows MorphCache's improvement by +2.1 points on average
// (more capacity to manage intelligently); doubling L3 by +1.8; doubling
// associativities brings no additional benefit; an 8-core CMP sees
// benefits 0.7 points lower than 16-core (less reconfiguration
// flexibility).
func sens(cfg mc.Config, quick bool) error {
	names := mixNames(true) // the four-representative subset keeps this tractable
	if quick {
		names = names[:2]
	}

	// Each (mix, parameter-mutation) pair is an independent job: the job
	// builds its own generators and hierarchies, so the per-case fan-out is
	// safe at any worker count and the mean is taken over in-order results.
	gain := func(mut func(*hierarchy.Params), cores int) (float64, error) {
		gains, err := runner.Map(runCtx, names, runner.Options{Workers: jobCount(), Progress: runnerProgress},
			func(_ int, mn string) (float64, error) {
				c := cfg
				c.Cores = cores
				if cores == 8 {
					// The paper's 8-core study uses 8-application mixes (§5.4).
					mn += " (8)"
				}
				w := mc.Mix(mn)
				gens, err := w.Generators(c)
				if err != nil {
					return 0, err
				}
				p := c.Params()
				if mut != nil {
					mut(&p)
				}
				baseSpec := fmt.Sprintf("(%d:1:1)", cores)
				sp := p
				sp.ChargeRemote = false
				base, err := sim.RunStatic(simConfigOf(c), sp, baseSpec, gens)
				if err != nil {
					return 0, err
				}
				gens2, err := w.Generators(c)
				if err != nil {
					return 0, err
				}
				mrun, err := sim.RunPolicy(simConfigOf(c), p, core.New(core.DefaultOptions()), gens2)
				if err != nil {
					return 0, err
				}
				return mrun.Throughput() / base.Throughput(), nil
			})
		if err != nil {
			return 0, err
		}
		return stats.Mean(gains), nil
	}

	ref, err := gain(nil, cfg.Cores)
	if err != nil {
		return err
	}
	fmt.Fprintf(outw, "reference: MorphCache/(16:1:1) gain %+.1f%%\n\n", 100*(ref-1))

	cases := []struct {
		name  string
		paper string
		mut   func(*hierarchy.Params)
		cores int
	}{
		{"2x L2 slice size", "+2.1 points", func(p *hierarchy.Params) { p.L2SliceBytes *= 2 }, cfg.Cores},
		{"2x L3 slice size", "+1.8 points", func(p *hierarchy.Params) { p.L3SliceBytes *= 2 }, cfg.Cores},
		{"2x associativity", "~0 points", func(p *hierarchy.Params) { p.L2Ways *= 2; p.L3Ways *= 2 }, cfg.Cores},
		{"8-core CMP", "-0.7 points", nil, 8},
	}
	for _, cse := range cases {
		g, err := gain(cse.mut, cse.cores)
		if err != nil {
			return err
		}
		fmt.Fprintf(outw, "%-18s gain %+6.1f%%  (delta vs reference %+5.1f points | paper %s)\n",
			cse.name, 100*(g-1), 100*(g-ref), cse.paper)
	}
	fmt.Fprintln(outw, "\nshape criteria: more capacity -> modestly larger MorphCache advantage;")
	fmt.Fprintln(outw, "associativity alone does not help; fewer cores -> slightly smaller advantage.")
	return nil
}
