package main

import (
	"fmt"

	mc "morphcache"

	"morphcache/internal/stats"
)

// seeds checks that the headline result (MorphCache over the all-shared
// baseline, Fig. 13) is not an artifact of one workload seed: the gain is
// re-measured under independent seeds and reported with its spread.
func seeds(cfg mc.Config, quick bool) error {
	names := mixNames(true)
	if quick {
		names = names[:2]
	}
	seedList := []uint64{1, 2, 3}
	// One job per (mix, seed, policy): seeds live in per-job configs.
	cfgFor := func(sd uint64) *mc.Config {
		c := cfg
		c.Seed = sd
		return &c
	}
	var jobs []mc.RunSpec
	for _, mn := range names {
		w := mc.Mix(mn)
		for _, sd := range seedList {
			c := cfgFor(sd)
			jobs = append(jobs,
				mc.RunSpec{Policy: "(16:1:1)", Workload: w, Config: c},
				mc.RunSpec{Policy: "morph", Workload: w, Config: c})
		}
	}
	if err := prefetch(cfg, jobs); err != nil {
		return err
	}
	header("mix", []string{"seed1", "seed2", "seed3", "mean", "std"})
	var all []float64
	for _, mn := range names {
		var gains []float64
		for _, sd := range seedList {
			c := *cfgFor(sd)
			w := mc.Mix(mn)
			base, err := staticResult(c, "(16:1:1)", w)
			if err != nil {
				return err
			}
			m, err := morphResult(c, w)
			if err != nil {
				return err
			}
			gains = append(gains, m.Throughput/base.Throughput)
		}
		fmt.Fprintf(outw, "%-14s %10.3f %10.3f %10.3f %10.3f %10.3f\n",
			mn, gains[0], gains[1], gains[2], stats.Mean(gains), stats.StdDev(gains))
		all = append(all, gains...)
	}
	fmt.Fprintf(outw, "\nMorphCache/baseline across %d runs: mean %.3f, std %.3f, min %.3f\n",
		len(all), stats.Mean(all), stats.StdDev(all), stats.Min(all))
	fmt.Fprintln(outw, "(the gain must dominate the seed noise for the Fig. 13 conclusion to hold)")
	return nil
}
