package main

import (
	"testing"

	mc "morphcache"

	"morphcache/internal/workload"
)

// TestSpecKeyBanditNoAlias pins the memo-fingerprint rules for bandit runs:
// a bandit run must never alias its full-run twin, two bandit runs with
// different options must never share a cache entry, and bandit-free keys
// must not change at all (they are the golden-report run IDs).
func TestSpecKeyBanditNoAlias(t *testing.T) {
	cfg := mc.LabConfig()
	w := mc.Mix(workload.PhaseShiftMixName)

	plain := specKey(cfg, mc.RunSpec{Policy: "bandit", Workload: w})

	b1 := cfg
	o1 := mc.DefaultBanditConfig()
	o1.Arms = []string{"morph", "dsr"}
	b1.Bandit = &o1
	k1 := specKey(cfg, mc.RunSpec{Policy: "bandit", Workload: w, Config: &b1})

	b2 := cfg
	o2 := o1
	o2.WindowEpochs = 4
	b2.Bandit = &o2
	k2 := specKey(cfg, mc.RunSpec{Policy: "bandit", Workload: w, Config: &b2})

	b3 := cfg
	o3 := o1
	o3.Arms = []string{"morph", "pipp"}
	b3.Bandit = &o3
	k3 := specKey(cfg, mc.RunSpec{Policy: "bandit", Workload: w, Config: &b3})

	if k1 == plain || k2 == plain || k3 == plain {
		t.Fatal("a bandit run aliased a bandit-free key")
	}
	if k1 == k2 || k1 == k3 || k2 == k3 {
		t.Fatalf("distinct bandit configs share a memo key:\n%s\n%s\n%s", k1, k2, k3)
	}

	// Equal options must alias (that is the point of the memo) even through
	// a different-ordered arm list.
	b4 := cfg
	o4 := o1
	o4.Arms = []string{"dsr", "morph"}
	b4.Bandit = &o4
	if k4 := specKey(cfg, mc.RunSpec{Policy: "bandit", Workload: w, Config: &b4}); k4 != k1 {
		t.Fatalf("arm order must not change the key:\n%s\n%s", k4, k1)
	}
}
