package main

import (
	"fmt"

	mc "morphcache"
)

// fig16 reproduces Fig. 16: MorphCache against the static topologies on
// the multithreaded PARSEC applications (performance = throughput, which
// for fixed work per interval is proportional to inverse execution time).
// Paper averages: MorphCache +25.6% over (16:1:1), +30.4% over (1:1:16),
// +12.3% over (4:4:1), +7.5% over (8:2:1), +8.5% over (1:16:1); facesim,
// ferret, freqmine and x264 (high spatial ACF variance) gain most.
func fig16(cfg mc.Config, quick bool) error {
	var jobs []mc.RunSpec
	for _, app := range parsecNames(quick) {
		w := mc.Parsec(app)
		for _, s := range staticSpecs {
			jobs = append(jobs, mc.RunSpec{Policy: s, Workload: w})
		}
		jobs = append(jobs, mc.RunSpec{Policy: "morph", Workload: w})
	}
	if err := prefetch(cfg, jobs); err != nil {
		return err
	}
	cols := append(append([]string{}, staticSpecs...), "morph")
	header("app", cols)
	gains := map[string][]float64{}
	morphGain := map[string]float64{}
	for _, app := range parsecNames(quick) {
		w := mc.Parsec(app)
		vals := make([]float64, 0, len(cols))
		var base float64
		for _, s := range staticSpecs {
			r, err := staticResult(cfg, s, w)
			if err != nil {
				return err
			}
			if s == "(16:1:1)" {
				base = r.Throughput
			}
			vals = append(vals, r.Throughput)
		}
		m, err := morphResult(cfg, w)
		if err != nil {
			return err
		}
		vals = append(vals, m.Throughput)
		row(app, vals, base)
		for i, s := range staticSpecs {
			gains[s] = append(gains[s], m.Throughput/vals[i])
		}
		morphGain[app] = m.Throughput / base
	}
	fmt.Fprintln(outw, "\naverage MorphCache gain over each static (measured | paper):")
	paper := map[string]string{
		"(16:1:1)": "+25.6%", "(1:1:16)": "+30.4%", "(4:4:1)": "+12.3%",
		"(8:2:1)": "+7.5%", "(1:16:1)": "+8.5%",
	}
	for _, s := range staticSpecs {
		fmt.Fprintf(outw, "  vs %-9s %+6.1f%% | %s\n", s, 100*(mean(gains[s])-1), paper[s])
	}
	return nil
}

// fig17 reproduces Fig. 17: MorphCache against PIPP and DSR, both extended
// to manage the L2 and the L3, on the multiprogrammed mixes. Paper:
// MorphCache +6.6% over PIPP and +5.7% over DSR on average, with MIX 04
// and MIX 08 (little ACF variation) as the weak cases.
func fig17(cfg mc.Config, quick bool) error {
	var jobs []mc.RunSpec
	for _, mn := range mixNames(quick) {
		w := mc.Mix(mn)
		jobs = append(jobs,
			mc.RunSpec{Policy: "(16:1:1)", Workload: w},
			mc.RunSpec{Policy: "pipp", Workload: w},
			mc.RunSpec{Policy: "dsr", Workload: w},
			mc.RunSpec{Policy: "morph", Workload: w})
	}
	if err := prefetch(cfg, jobs); err != nil {
		return err
	}
	header("mix", []string{"pipp", "dsr", "morph"})
	var overPIPP, overDSR []float64
	for _, mn := range mixNames(quick) {
		w := mc.Mix(mn)
		base, err := staticResult(cfg, "(16:1:1)", w)
		if err != nil {
			return err
		}
		p, err := pippResult(cfg, w)
		if err != nil {
			return err
		}
		d, err := dsrResult(cfg, w)
		if err != nil {
			return err
		}
		m, err := morphResult(cfg, w)
		if err != nil {
			return err
		}
		row(mn, []float64{p.Throughput, d.Throughput, m.Throughput}, base.Throughput)
		overPIPP = append(overPIPP, m.Throughput/p.Throughput)
		overDSR = append(overDSR, m.Throughput/d.Throughput)
	}
	fmt.Fprintf(outw, "\naverage MorphCache gain (measured | paper):\n")
	fmt.Fprintf(outw, "  over PIPP: %+6.1f%% | +6.6%%\n", 100*(mean(overPIPP)-1))
	fmt.Fprintf(outw, "  over DSR:  %+6.1f%% | +5.7%%\n", 100*(mean(overDSR)-1))
	return nil
}
