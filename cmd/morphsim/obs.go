package main

import (
	"context"
	"fmt"
	"os"
	"time"

	"morphcache/internal/obs"
)

// obsSetup arms the single-run observability endpoints (-admin / -trace;
// DESIGN.md §10): it builds a one-shard hub, serves the admin endpoint, and
// mints the run's observer. The returned teardown writes the trace file and
// drains the server; with neither flag set everything is nil/no-op and the
// run is unobserved.
func obsSetup(ctx context.Context, adminAddr, traceFile, label string) (teardown func(), observer *obs.Observer, err error) {
	if adminAddr == "" && traceFile == "" {
		return func() {}, nil, nil
	}
	hub := obs.NewHub(obs.HubOptions{Shards: 1, Trace: traceFile != ""})
	var srv *obs.Server
	if adminAddr != "" {
		admin := obs.NewAdmin(hub.Registry, hub.Jobs)
		if srv, err = obs.Serve(adminAddr, admin); err != nil {
			return nil, nil, err
		}
		fmt.Fprintf(os.Stderr, "morphsim: admin endpoint on http://%s (/metrics, /jobs, /healthz, /debug/pprof)\n", srv.Addr())
		// An interrupt flips /healthz to draining right away, before the
		// engine goroutine notices the cancellation.
		go func() {
			<-ctx.Done()
			admin.SetHealthy(false)
		}()
	}
	observer = hub.Observer(label)
	teardown = func() {
		if traceFile != "" {
			if err := writeSpanTrace(hub, traceFile); err != nil {
				fmt.Fprintln(os.Stderr, "morphsim:", err)
				os.Exit(1)
			}
		}
		if srv != nil {
			sctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			if err := srv.Shutdown(sctx); err != nil {
				fmt.Fprintln(os.Stderr, "morphsim: admin shutdown:", err)
			}
		}
	}
	return teardown, observer, nil
}

// writeSpanTrace dumps the collected phase spans as a Chrome trace-event
// document (load it in chrome://tracing or ui.perfetto.dev).
func writeSpanTrace(hub *obs.Hub, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("write trace: %w", err)
	}
	if err := hub.Tracer.WriteJSON(f); err != nil {
		f.Close()
		return fmt.Errorf("write trace: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("write trace: %w", err)
	}
	fmt.Fprintln(os.Stderr, "morphsim: trace written to", path)
	return nil
}
