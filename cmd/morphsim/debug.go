package main

import (
	"fmt"

	"morphcache/internal/hierarchy"
)

// dumpStats prints the hierarchy's event counters and per-slice utilization
// estimates (enabled by -stats).
func dumpStats(sys *hierarchy.System) {
	st := sys.Stats()
	tot := float64(st.Accesses)
	fmt.Printf("accesses=%d  L1=%.1f%%  L2loc=%.1f%% L2rem=%.1f%%  L3loc=%.1f%% L3rem=%.1f%%  c2c=%.1f%% mem=%.1f%%\n",
		st.Accesses,
		100*float64(st.L1Hits)/tot,
		100*float64(st.L2Local)/tot, 100*float64(st.L2Remote)/tot,
		100*float64(st.L3Local)/tot, 100*float64(st.L3Remote)/tot,
		100*float64(st.C2C)/tot, 100*float64(st.MemReads)/tot)
	fmt.Printf("coherenceInv=%d lazyInv=%d inclusionInv=%d backInv=%d migrations=%d writebacks=%d\n",
		st.CoherenceInv, st.LazyInv, st.InclusionInv, st.BackInv, st.Migrations, st.Writeback)
}
