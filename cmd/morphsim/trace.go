package main

import (
	"fmt"
	"os"

	"morphcache/internal/mem"
	"morphcache/internal/sim"
	"morphcache/internal/trace"
	"morphcache/internal/workload"
)

// recordingSource wraps a Source and mirrors everything it produces into a
// trace writer.
type recordingSource struct {
	inner sim.Source
	core  int
	w     *trace.Writer
}

func (r *recordingSource) ASID() mem.ASID { return r.inner.ASID() }

func (r *recordingSource) BeginEpoch(e int) {
	if e > 0 && r.core == 0 {
		// One boundary record per epoch; core 0 leads the engine's
		// BeginEpoch sweep.
		if err := r.w.EpochBoundary(); err != nil {
			fatal(err)
		}
	}
	r.inner.BeginEpoch(e)
}

func (r *recordingSource) Next() mem.Access {
	a := r.inner.Next()
	if err := r.w.Record(r.core, a); err != nil {
		fatal(err)
	}
	return a
}

// wrapRecording wraps every generator with a recorder into the given file.
func wrapRecording(gens []*workload.Generator, path string) ([]sim.Source, func() error, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	w, err := trace.NewWriter(f, len(gens))
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	srcs := make([]sim.Source, len(gens))
	for i, g := range gens {
		srcs[i] = &recordingSource{inner: g, core: i, w: w}
	}
	done := func() error {
		if err := w.Flush(); err != nil {
			f.Close()
			return err
		}
		fmt.Printf("recorded %d references to %s\n", w.Records(), path)
		return f.Close()
	}
	return srcs, done, nil
}

// replaySources opens a trace file and returns one cursor per core.
func replaySources(path string, cores int) ([]sim.Source, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	tr, err := trace.Read(f)
	if err != nil {
		return nil, err
	}
	if tr.Cores != cores {
		return nil, fmt.Errorf("trace has %d cores, configuration has %d", tr.Cores, cores)
	}
	srcs := make([]sim.Source, cores)
	for c := 0; c < cores; c++ {
		cur, err := tr.Cursor(c)
		if err != nil {
			return nil, err
		}
		srcs[c] = cur
	}
	return srcs, nil
}
