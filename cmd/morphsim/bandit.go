package main

import (
	"fmt"
	"strings"

	"morphcache/internal/baselines/bandit"
	"morphcache/internal/sim"
)

// banditOptions assembles the meta-policy parameters from the -bandit-* flag
// values: the defaults of DESIGN.md §16, with any explicitly set flag
// overriding its field. A warmup flag of -1 keeps the default; 0 disables
// window warmup (mirroring -sampled-warmup).
func banditOptions(arms, strategy string, window, warmup int, reward string, epsilon float64) bandit.Options {
	o := bandit.Defaults()
	if arms != "" {
		o.Arms = nil
		for _, a := range strings.Split(arms, ",") {
			o.Arms = append(o.Arms, strings.TrimSpace(a))
		}
	} else {
		o.Arms = nil // filled from the facade's default zoo by the caller
	}
	if strategy != "" {
		o.Strategy = strategy
	}
	if window > 0 {
		o.WindowEpochs = window
	}
	switch {
	case warmup > 0:
		o.WindowWarmup = warmup
	case warmup == 0:
		o.WindowWarmup = bandit.NoWindowWarmup
	}
	if reward != "" {
		o.Reward = reward
	}
	if epsilon > 0 {
		o.Epsilon = epsilon
	}
	return o
}

// runBandit executes the bandit counterpart of runPolicy: split the run into
// windows, pick one arm (policy) per window, simulate it on a fresh target
// via the resume machinery, and stitch the measured epochs back together.
// Arms build through the same buildTarget as -policy, so the vocabulary is
// identical. Like -sampled, there is no single hierarchy to -stats.
func runBandit(cfg sim.Config, cores, scale int, wl string, o bandit.Options) (*bandit.RunResult, error) {
	f := bandit.Factories{
		NewTarget: func(arm string) (sim.Target, error) {
			t, _, err := buildTarget(cores, scale, arm)
			return t, err
		},
		NewSources: func() ([]sim.Source, error) {
			gens, err := buildGenerators(wl, cores, cfg.Seed, scale)
			if err != nil {
				return nil, err
			}
			return sim.FromGenerators(gens), nil
		},
	}
	return bandit.Run(cfg, o, f)
}

// printBanditSummary renders the decision report after the standard run
// lines: the arm schedule as a run-length string, the per-arm play counts,
// and any reward-degradation warnings.
func printBanditSummary(rep *bandit.Report) {
	var parts []string
	for i := 0; i < len(rep.Windows); {
		j := i
		for j < len(rep.Windows) && rep.Windows[j].Arm == rep.Windows[i].Arm {
			j++
		}
		parts = append(parts, fmt.Sprintf("%s x%d", rep.Windows[i].Arm, j-i))
		i = j
	}
	fmt.Printf("bandit: %s/%s, %d-epoch windows, %d switches, %d resets\n",
		rep.Strategy, rep.Reward, rep.WindowEpochs, rep.Switches, rep.Resets)
	fmt.Printf("  schedule: %s\n", strings.Join(parts, " -> "))
	for _, a := range rep.Arms {
		fmt.Printf("  arm %-18s plays=%2d  mean reward=%8.4f\n", a.Name, a.Plays, a.MeanReward)
	}
	for _, warn := range rep.Warnings {
		fmt.Printf("  note: %s\n", warn)
	}
}
