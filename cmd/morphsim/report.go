package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"morphcache/internal/baselines/bandit"
	"morphcache/internal/hierarchy"
	"morphcache/internal/metrics"
	"morphcache/internal/sampled"
	"morphcache/internal/sim"
	"morphcache/internal/telemetry"
)

// report is the machine-readable run summary emitted by -out json.
type report struct {
	Workload         string                `json:"workload"`
	Policy           string                `json:"policy"`
	EpochCycles      uint64                `json:"epoch_cycles"`
	Epochs           int                   `json:"epochs"`
	Throughput       float64               `json:"throughput"`
	PerCoreIPC       []float64             `json:"per_core_ipc"`
	EpochThroughputs []float64             `json:"epoch_throughputs"`
	EpochTopologies  []string              `json:"epoch_topologies"`
	Reconfigurations int                   `json:"reconfigurations"`
	AsymmetricSteps  int                   `json:"asymmetric_steps"`
	Hierarchy        *hierarchy.Stats      `json:"hierarchy,omitempty"`
	PerCore          []hierarchy.CoreStats `json:"per_core,omitempty"`
	Telemetry        *telemetry.Log        `json:"telemetry,omitempty"`
	// Sampled is the reconstruction report of a -sampled run (absent for
	// full runs, so their documents are unchanged by its introduction).
	Sampled *sampled.Report `json:"sampled,omitempty"`
	// Bandit is the decision report of a -bandit run (absent otherwise,
	// preserving existing documents the same way).
	Bandit *bandit.Report `json:"bandit,omitempty"`
}

func emitJSON(w io.Writer, workload string, cfg sim.Config, run *metrics.Run, sys *hierarchy.System, tl *telemetry.Log, srep *sampled.Report, brep *bandit.Report) error {
	r := report{
		Workload:         workload,
		Policy:           run.Policy,
		EpochCycles:      cfg.EpochCycles,
		Epochs:           len(run.Epochs),
		Throughput:       run.Throughput(),
		PerCoreIPC:       run.PerCoreIPC,
		EpochThroughputs: run.EpochThroughputs(),
		Reconfigurations: run.Reconfigurations,
		AsymmetricSteps:  run.AsymmetricSteps,
	}
	for _, e := range run.Epochs {
		r.EpochTopologies = append(r.EpochTopologies, e.Topology)
	}
	if sys != nil {
		st := *sys.Stats()
		r.Hierarchy = &st
		for c := 0; c < sys.Cores(); c++ {
			r.PerCore = append(r.PerCore, sys.CoreStats(c))
		}
	}
	r.Telemetry = tl
	r.Sampled = srep
	r.Bandit = brep
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// writeEpochLog writes the run's telemetry log as indented JSON to path.
func writeEpochLog(path string, tl *telemetry.Log) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tl.WriteJSON(f); err != nil {
		f.Close()
		return fmt.Errorf("write %s: %w", path, err)
	}
	return f.Close()
}
