// Command morphsim runs one workload under one cache-management policy and
// prints per-epoch and aggregate statistics.
//
// Usage examples:
//
//	morphsim -workload "MIX 01" -policy morph
//	morphsim -workload "MIX 03" -policy "(4:4:1)" -epochs 10
//	morphsim -workload dedup -policy morph -verbose -stats
//	morphsim -workload "MIX 05" -policy morph -trace-out mix05.mctr
//	morphsim -trace-in mix05.mctr -policy "(16:1:1)"
//	morphsim -workload "MIX 01" -policy morph -epochs 60 -sampled
//
// Policies: any static "(x:y:z)" spec, "morph", "morph-nodegrade",
// "morph-qos", "morph-split-aggressive", "morph-arbitrary",
// "morph-nonneighbor", "pipp", or "dsr".
//
// -faults N injects a deterministic N-event hardware-fault plan (drawn from
// -fault-seed) into the measured region; "morph-nodegrade" runs the same
// controller with graceful degradation disabled, as the strawman to compare
// against (DESIGN.md §9).
//
// -sampled switches to sampled simulation (DESIGN.md §13): the run's epochs
// are clustered into phases from cheap profiling signatures, one
// representative window is simulated per phase, and the full-run metrics
// are reconstructed as their weighted combination. The -sampled-* flags
// override individual sampling parameters.
//
// -bandit replaces -policy with the bandit meta-policy (DESIGN.md §16): at
// every window of epochs a multi-armed bandit picks one policy from the arm
// zoo (-bandit-arms, default: morph, pipp, dsr, and the standard statics),
// runs it for the window via the resume machinery, and learns from the
// observed reward. The -bandit-* flags override individual parameters:
//
//	morphsim -workload "PHASE SHIFT" -epochs 22 -bandit
//	morphsim -workload "MIX 01" -bandit -bandit-arms "morph,dsr" -bandit-strategy epsilon
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	mc "morphcache"

	"morphcache/internal/baselines/bandit"
	"morphcache/internal/baselines/dsr"
	"morphcache/internal/baselines/pipp"
	"morphcache/internal/core"
	"morphcache/internal/fault"
	"morphcache/internal/hierarchy"
	"morphcache/internal/metrics"
	"morphcache/internal/sampled"
	"morphcache/internal/sim"
	"morphcache/internal/telemetry"
	"morphcache/internal/topology"
	"morphcache/internal/workload"
)

func main() {
	var (
		wl          = flag.String("workload", "MIX 01", "Table 5 mix name or PARSEC benchmark name")
		policy      = flag.String("policy", "morph", `policy: "(x:y:z)", morph, morph-nodegrade, morph-qos, morph-split-aggressive, morph-arbitrary, morph-nonneighbor, pipp, dsr`)
		epochs      = flag.Int("epochs", 20, "measured epochs")
		warmup      = flag.Int("warmup", 2, "warmup epochs (unmeasured)")
		epochCycles = flag.Uint64("epoch-cycles", 1_000_000, "cycles per reconfiguration interval")
		cores       = flag.Int("cores", 16, "number of cores (power of two)")
		seed        = flag.Uint64("seed", 1, "workload seed")
		scale       = flag.Int("scale", 16, "capacity scale divisor (1 = full Table 3 sizes)")
		verbose     = flag.Bool("verbose", false, "print per-epoch topology and throughput")
		stats       = flag.Bool("stats", false, "print hierarchy event counters after the run")
		traceOut    = flag.String("trace-out", "", "record the reference streams to this file")
		traceIn     = flag.String("trace-in", "", "replay reference streams from this file instead of the synthetic workload")
		jsonOut     = flag.Bool("json", false, "emit the run report as JSON on stdout (alias for -out json)")
		outFmt      = flag.String("out", "", "emit the run report on stdout: json (report + telemetry) or csv (per-epoch, per-core telemetry rows)")
		epochLog    = flag.String("epochlog", "", "write the run's epoch telemetry (JSON) to this file")
		faults      = flag.Int("faults", 0, "inject this many deterministic hardware-fault events into the measured region (0 = none)")
		faultSeed   = flag.Uint64("fault-seed", 1, "seed of the generated fault plan (with -faults)")
		adminAddr   = flag.String("admin", "", "serve the admin endpoint (/metrics, /jobs, /healthz, /debug/pprof) on this address, e.g. :9190 or 127.0.0.1:0")
		spanTrace   = flag.String("trace", "", "write a Chrome trace-event JSON of simulator phases to this file (open in chrome://tracing)")
		sampledRun  = flag.Bool("sampled", false, "sampled simulation: cluster epochs into phases, simulate one representative window per phase, reconstruct full-run metrics (DESIGN.md §13)")
		sampledK    = flag.Int("sampled-phases", 0, "with -sampled: maximum number of phases (0 = default 4)")
		sampledWarm = flag.Int("sampled-warmup", -1, "with -sampled: unmeasured warmup epochs per window (-1 = default 2, 0 = none)")
		sampledWin  = flag.Uint64("sampled-window", 0, "with -sampled: truncate window epochs to this many cycles (0 = full epochs)")
		sampledRefs = flag.Int("sampled-refs", 0, "with -sampled: profiled references per core per epoch (0 = default 2048)")
		banditRun   = flag.Bool("bandit", false, "bandit meta-policy: pick one policy per window of epochs from the arm zoo, learn from observed rewards, stitch the measured epochs (DESIGN.md §16; replaces -policy)")
		banditArms  = flag.String("bandit-arms", "", `with -bandit: comma-separated arm list in the -policy vocabulary, e.g. "morph,pipp,dsr,(4:4:1)" (empty = morph, pipp, dsr, and the standard statics)`)
		banditStrat = flag.String("bandit-strategy", "", "with -bandit: ucb1 or epsilon (empty = default ucb1)")
		banditWin   = flag.Int("bandit-window", 0, "with -bandit: measured epochs per window (0 = default 2)")
		banditWarm  = flag.Int("bandit-warmup", -1, "with -bandit: unmeasured warmup epochs per window (-1 = default 1, 0 = none)")
		banditRew   = flag.String("bandit-reward", "", "with -bandit: reward signal: throughput, mpki, or energy (empty = default throughput)")
		banditEps   = flag.Float64("bandit-epsilon", 0, "with -bandit: exploration probability of the epsilon strategy (0 = default 0.1)")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		// A stray positional argument is a mistyped flag, not a request for
		// the default run; succeeding silently would hide it.
		fatal(fmt.Errorf("unexpected arguments: %v (all options are flags)", flag.Args()))
	}
	if *jsonOut && *outFmt == "" {
		*outFmt = "json"
	}
	if *outFmt != "" && *outFmt != "json" && *outFmt != "csv" {
		fatal(fmt.Errorf("-out must be json or csv (got %q)", *outFmt))
	}

	var sopts sampled.Options
	if *sampledRun {
		switch {
		case *traceIn != "":
			fatal(fmt.Errorf("-sampled needs re-runnable synthetic sources; -trace-in replay is full-run only"))
		case *traceOut != "":
			fatal(fmt.Errorf("-sampled simulates only representative windows; record traces with a full run (drop -sampled)"))
		case *faults > 0:
			fatal(fmt.Errorf("-sampled cannot honor a fault plan: faults damage specific epochs, and a sampled run does not simulate them all"))
		case *stats:
			fatal(fmt.Errorf("-stats reports one run's hierarchy; a sampled run simulates several independent windows (drop -stats)"))
		}
		sopts = sampledOptions(*sampledK, *sampledWarm, *sampledWin, *sampledRefs)
	}

	var bopts mc.BanditConfig
	if *banditRun {
		switch {
		case *sampledRun:
			fatal(fmt.Errorf("-bandit and -sampled both re-slice the run into windows; pick one"))
		case *traceIn != "":
			fatal(fmt.Errorf("-bandit needs re-runnable synthetic sources; -trace-in replay is full-run only"))
		case *traceOut != "":
			fatal(fmt.Errorf("-bandit simulates overlapping per-window streams; record traces with a full run (drop -bandit)"))
		case *faults > 0:
			fatal(fmt.Errorf("-bandit cannot honor a fault plan: windows run on fresh targets, and faults damage specific epochs of one persistent hierarchy"))
		case *stats:
			fatal(fmt.Errorf("-stats reports one run's hierarchy; a bandit run builds a fresh target per window (drop -stats)"))
		}
		bopts = banditOptions(*banditArms, *banditStrat, *banditWin, *banditWarm, *banditRew, *banditEps)
	}

	// Build the fault plan first so validation below covers it too.
	var plan *fault.Plan
	if *faults > 0 {
		p, err := fault.NewPlan(*faultSeed, fault.Spec{
			Cores:      *cores,
			FirstEpoch: *warmup,
			Epochs:     *epochs,
			Events:     *faults,
		})
		if err != nil {
			fatal(err)
		}
		plan = p
		for _, e := range plan.Events {
			fmt.Fprintln(os.Stderr, "morphsim: fault:", e)
		}
	}

	// Validate the flag-assembled configuration through the facade's rules
	// (power-of-two cores, positive epochs, in-range fault events, ...).
	vcfg := mc.Config{
		Cores:        *cores,
		Scale:        *scale,
		Epochs:       *epochs,
		WarmupEpochs: *warmup,
		EpochCycles:  *epochCycles,
		Seed:         *seed,
		Faults:       plan,
	}
	if *sampledRun {
		vcfg.Sampled = &sopts
	}
	if *banditRun {
		if len(bopts.Arms) == 0 {
			bopts.Arms = mc.DefaultBanditArms(vcfg)
		}
		vcfg.Bandit = &bopts
	}
	if err := vcfg.Validate(); err != nil {
		fatal(err)
	}

	cfg := sim.DefaultConfig()
	cfg.Epochs = *epochs
	cfg.WarmupEpochs = *warmup
	cfg.EpochCycles = *epochCycles
	cfg.Seed = *seed
	cfg.Faults = plan
	// Structured output wants the epoch log; the default text path keeps
	// telemetry off (results are identical either way).
	var tl *telemetry.Log
	if *outFmt != "" || *epochLog != "" {
		tl = telemetry.NewLog()
		cfg.Recorder = tl
	}

	var srcs []sim.Source
	var finish func() error
	switch {
	case *traceIn != "":
		s, err := replaySources(*traceIn, *cores)
		if err != nil {
			fatal(err)
		}
		srcs = s
	default:
		gens, err := buildGenerators(*wl, *cores, *seed, *scale)
		if err != nil {
			fatal(err)
		}
		if *traceOut != "" {
			s, done, err := wrapRecording(gens, *traceOut)
			if err != nil {
				fatal(err)
			}
			srcs, finish = s, done
		} else {
			srcs = sim.FromGenerators(gens)
		}
	}

	// ^C while the engine runs exits 1 with a clear message instead of the
	// default silent kill; a second ^C (after stopSignals) force-kills.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stopSignals()

	obsDone, observer, err := obsSetup(ctx, *adminAddr, *spanTrace, *policy+" "+*wl)
	if err != nil {
		fatal(err)
	}
	defer obsDone()
	cfg.Observer = observer

	type runOutcome struct {
		run  *metrics.Run
		sys  *hierarchy.System
		rep  *sampled.Report
		brep *bandit.Report
		slog *telemetry.Log
		err  error
	}
	ch := make(chan runOutcome, 1)
	go func() {
		observer.JobStarted()
		start := time.Now()
		var o runOutcome
		switch {
		case *banditRun:
			rr, err := runBandit(cfg, *cores, *scale, *wl, bopts)
			if err != nil {
				o.err = err
			} else {
				o = runOutcome{run: rr.Run, brep: rr.Report}
			}
		case *sampledRun:
			rr, err := runSampled(cfg, *cores, *scale, *policy, *wl, sopts)
			if err != nil {
				o.err = err
			} else {
				o = runOutcome{run: rr.Run, rep: rr.Report, slog: rr.Log}
			}
		default:
			o.run, o.sys, o.err = runPolicy(cfg, *cores, *scale, *policy, srcs)
		}
		observer.JobFinished(o.err, time.Since(start))
		ch <- o
	}()
	var run *metrics.Run
	var sys *hierarchy.System
	var srep *sampled.Report
	var brep *bandit.Report
	select {
	case o := <-ch:
		if o.err != nil {
			fatal(o.err)
		}
		run, sys, srep, brep = o.run, o.sys, o.rep, o.brep
		if tl != nil && o.slog != nil {
			// Sampled runs record their windows into their own log (absolute
			// epoch indices, warmup records flagged); that log is the one
			// structured output should carry.
			tl = o.slog
		}
	case <-ctx.Done():
		stopSignals()
		fatal(fmt.Errorf("interrupted (%v); partial results discarded", ctx.Err()))
	}
	if finish != nil {
		if err := finish(); err != nil {
			fatal(err)
		}
	}

	source := *wl
	if *traceIn != "" {
		source = "trace:" + *traceIn
	}
	if *epochLog != "" {
		if err := writeEpochLog(*epochLog, tl); err != nil {
			fatal(err)
		}
	}
	switch *outFmt {
	case "json":
		if err := emitJSON(os.Stdout, source, cfg, run, sys, tl, srep, brep); err != nil {
			fatal(err)
		}
		return
	case "csv":
		if err := tl.WriteCSV(os.Stdout); err != nil {
			fatal(err)
		}
		return
	}
	fmt.Printf("workload=%q policy=%q epochs=%d epoch-cycles=%d\n", source, run.Policy, len(run.Epochs), cfg.EpochCycles)
	if *verbose {
		for _, e := range run.Epochs {
			fmt.Printf("  epoch %2d  throughput=%6.3f  topology=%s\n", e.Index, e.Throughput(), e.Topology)
		}
	}
	fmt.Printf("throughput (sum IPC): %.4f\n", run.Throughput())
	if run.Reconfigurations > 0 {
		fmt.Printf("reconfigurations: %d (asymmetric outcome in %d/%d intervals)\n",
			run.Reconfigurations, run.AsymmetricSteps, len(run.Epochs))
	}
	if brep != nil {
		printBanditSummary(brep)
	}
	if srep != nil {
		fmt.Printf("sampled: %d phases over %d measured epochs; %d window epochs simulated (%.1fx cycle speedup)\n",
			len(srep.Phases), srep.MeasuredEpochs, srep.SimulatedEpochs, srep.Speedup)
		for _, ph := range srep.Phases {
			fmt.Printf("  phase rep=%-3d weight=%.2f radius=%.3f throughput=%6.3f topology=%s\n",
				ph.Representative, ph.Weight, ph.Radius, ph.Throughput, ph.Topology)
		}
		fmt.Printf("reconstructed: throughput %.4f +/- %.4f", srep.Throughput.Value, srep.Throughput.Err)
		if srep.MPKI.Value > 0 {
			fmt.Printf(", MPKI %.3f +/- %.3f", srep.MPKI.Value, srep.MPKI.Err)
		}
		fmt.Println()
	}
	if *stats && sys != nil {
		dumpStats(sys)
	}
}

func buildGenerators(name string, cores int, seed uint64, scale int) ([]*workload.Generator, error) {
	gcfg := workload.ScaledGenConfig(scale)
	if scale <= 1 {
		gcfg = workload.DefaultGenConfig()
	}
	if mix, err := workload.MixByName(name); err == nil {
		if len(mix.Benchmarks) < cores {
			return nil, fmt.Errorf("mix %q has %d applications, need %d cores", name, len(mix.Benchmarks), cores)
		}
		mix.Benchmarks = mix.Benchmarks[:cores]
		return workload.MixGenerators(mix, gcfg, seed), nil
	}
	p, err := workload.ByName(name)
	if err != nil {
		return nil, err
	}
	if p.Suite != workload.PARSEC {
		return nil, fmt.Errorf("%q is a single-threaded SPEC benchmark; use a Table 5 mix or a PARSEC name", name)
	}
	return workload.ParsecGenerators(p, cores, gcfg, seed), nil
}

// buildTarget assembles the cache system and policy named by the flag. The
// returned hierarchy is nil for the PIPP/DSR targets (they manage their own
// caches).
func buildTarget(cores, scale int, policy string) (sim.Target, *hierarchy.System, error) {
	params := hierarchy.ScaledDefault(cores, scale)
	if scale <= 1 {
		params = hierarchy.Default(cores)
	}
	var target sim.Target
	var sys *hierarchy.System
	switch {
	case strings.HasPrefix(policy, "(") || strings.Contains(policy, ":"):
		topo, err := topology.FromSpec(policy, cores)
		if err != nil {
			return nil, nil, err
		}
		params.ChargeRemote = false
		sys, err = hierarchy.New(params, topo)
		if err != nil {
			return nil, nil, err
		}
		target = &sim.HierarchyTarget{Sys: sys, Policy: sim.NopPolicy{Label: policy}}
	case policy == "pipp":
		target = pipp.New(params, pipp.DefaultOptions())
	case policy == "dsr":
		target = dsr.New(params, dsr.DefaultOptions())
	default:
		opts := core.DefaultOptions()
		nodegrade := false
		switch policy {
		case "morph":
		case "morph-nodegrade":
			nodegrade = true // fault-handling strawman: same controller, no degradation pass
		case "morph-qos":
			opts.QoS = true
		case "morph-split-aggressive":
			opts.Conflict = core.SplitAggressive
		case "morph-arbitrary":
			opts.AllowArbitrarySizes = true
		case "morph-nonneighbor":
			opts.AllowNonNeighbors = true
			opts.AllowArbitrarySizes = true
		default:
			return nil, nil, fmt.Errorf("unknown policy %q", policy)
		}
		params.ChargeRemote = true
		var err error
		sys, err = hierarchy.New(params, topology.AllPrivate(cores))
		if err != nil {
			return nil, nil, err
		}
		ctrl := core.New(opts)
		if nodegrade {
			ctrl.SetDegradation(false)
		}
		target = &sim.HierarchyTarget{Sys: sys, Policy: ctrl}
	}
	return target, sys, nil
}

// runPolicy executes the sources under the named policy.
func runPolicy(cfg sim.Config, cores, scale int, policy string, srcs []sim.Source) (*metrics.Run, *hierarchy.System, error) {
	target, sys, err := buildTarget(cores, scale, policy)
	if err != nil {
		return nil, nil, err
	}
	eng, err := sim.NewFromSources(cfg, target, srcs)
	if err != nil {
		return nil, nil, err
	}
	return eng.Run(), sys, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "morphsim:", err)
	os.Exit(1)
}
