package main

import (
	"fmt"

	"morphcache/internal/sampled"
	"morphcache/internal/sim"
)

// sampledOptions assembles the sampling parameters from the -sampled-* flag
// values: the defaults of DESIGN.md §13, with any explicitly set flag
// overriding its field. A warmup flag of -1 keeps the default; 0 disables
// window warmup.
func sampledOptions(phases, warmup int, window uint64, refs int) sampled.Options {
	o := sampled.Defaults()
	if phases > 0 {
		o.MaxPhases = phases
	}
	switch {
	case warmup > 0:
		o.WindowWarmup = warmup
	case warmup == 0:
		o.WindowWarmup = sampled.NoWindowWarmup
	}
	if window > 0 {
		o.WindowCycles = window
	}
	if refs > 0 {
		o.ProfileRefs = refs
	}
	return o
}

// runSampled executes the sampled counterpart of runPolicy: phase-cluster
// the run's epochs, simulate one representative window per phase on a fresh
// target with fresh sources, and reconstruct the full-run metrics. The
// hierarchy of a sampled run is per-window, so there is no -stats system to
// return.
func runSampled(cfg sim.Config, cores, scale int, policy, wl string, o sampled.Options) (*sampled.RunResult, error) {
	f := sampled.Factories{
		NewTarget: func() (sim.Target, error) {
			t, _, err := buildTarget(cores, scale, policy)
			return t, err
		},
		NewSources: func() ([]sim.Source, error) {
			gens, err := buildGenerators(wl, cores, cfg.Seed, scale)
			if err != nil {
				return nil, err
			}
			return sim.FromGenerators(gens), nil
		},
	}
	key := fmt.Sprintf("%s|c%d|x%d|cy%d", wl, cores, scale, cfg.EpochCycles)
	return sampled.Run(cfg, o, key, f)
}
