// Command benchjson converts `go test -bench` text output (read from stdin)
// into a stable JSON document, so benchmark baselines can be committed and
// diffed structurally instead of as free-form text:
//
//	go test -bench BatchSweep -benchtime 1x -run '^$' . | benchjson > BENCH_runner.json
//
// The schema is intentionally tiny: the context lines go test prints
// (goos/goarch/pkg/cpu) plus one entry per benchmark result line with every
// reported metric, custom b.ReportMetric units included. A FAIL anywhere in
// the stream exits non-zero — a baseline must never be refreshed from a
// failing run.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// benchSchema versions the document; bump on any field change.
const benchSchema = "morphcache-bench/v1"

type doc struct {
	Schema     string            `json:"schema"`
	Context    map[string]string `json:"context,omitempty"`
	Benchmarks []bench           `json:"benchmarks"`
}

type bench struct {
	Name       string `json:"name"`
	Procs      int    `json:"procs,omitempty"`
	Iterations int64  `json:"iterations"`
	// Metrics maps unit -> value ("ns/op", "B/op", "allocs/op", custom
	// units). encoding/json emits map keys sorted, so output is stable.
	Metrics map[string]float64 `json:"metrics"`
}

func main() {
	os.Exit(run(os.Stdin, os.Stdout, os.Stderr))
}

func run(stdin io.Reader, stdout, stderr io.Writer) int {
	d, err := parse(stdin)
	if err != nil {
		fmt.Fprintln(stderr, "benchjson:", err)
		return 1
	}
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(d); err != nil {
		fmt.Fprintln(stderr, "benchjson:", err)
		return 1
	}
	return 0
}

// parse reads the benchmark text stream. Context lines ("key: value")
// before the first result are kept; PASS/ok trailers are ignored; any FAIL
// line is an error.
func parse(r io.Reader) (*doc, error) {
	d := &doc{Schema: benchSchema, Benchmarks: []bench{}}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "Benchmark"):
			b, err := parseResult(line)
			if err != nil {
				return nil, err
			}
			d.Benchmarks = append(d.Benchmarks, b)
		case strings.HasPrefix(line, "FAIL"):
			return nil, fmt.Errorf("input stream contains a FAIL line: %q", line)
		case strings.HasPrefix(line, "PASS"), strings.HasPrefix(line, "ok "), strings.HasPrefix(line, "ok\t"):
			// test binary trailers
		default:
			if k, v, ok := strings.Cut(line, ": "); ok && !strings.Contains(k, " ") {
				if d.Context == nil {
					d.Context = map[string]string{}
				}
				d.Context[k] = strings.TrimSpace(v)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(d.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark result lines in input")
	}
	return d, nil
}

// parseResult decodes one "BenchmarkName-P  N  v1 u1  v2 u2 ..." line.
func parseResult(line string) (bench, error) {
	f := strings.Fields(line)
	if len(f) < 2 {
		return bench{}, fmt.Errorf("malformed benchmark line %q", line)
	}
	b := bench{Name: f[0], Metrics: map[string]float64{}}
	// The -P suffix is GOMAXPROCS; absent when it is 1 or was overridden.
	if i := strings.LastIndex(b.Name, "-"); i > 0 {
		if p, err := strconv.Atoi(b.Name[i+1:]); err == nil {
			b.Name, b.Procs = b.Name[:i], p
		}
	}
	n, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return bench{}, fmt.Errorf("benchmark line %q: iterations: %w", line, err)
	}
	b.Iterations = n
	rest := f[2:]
	if len(rest)%2 != 0 {
		return bench{}, fmt.Errorf("benchmark line %q: odd value/unit pairing", line)
	}
	for i := 0; i < len(rest); i += 2 {
		v, err := strconv.ParseFloat(rest[i], 64)
		if err != nil {
			return bench{}, fmt.Errorf("benchmark line %q: value %q: %w", line, rest[i], err)
		}
		b.Metrics[rest[i+1]] = v
	}
	return b, nil
}
