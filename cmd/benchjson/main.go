// Command benchjson converts `go test -bench` text output (read from stdin)
// into a stable JSON document, so benchmark baselines can be committed and
// diffed structurally instead of as free-form text:
//
//	go test -bench 'AccessPath' -benchtime 100000x -count 5 -benchmem -run '^$' . |
//	    benchjson > BENCH_runner.json
//
// Repeated runs of one benchmark (-count N) are aggregated to the MINIMUM of
// each metric — the standard noise-floor estimator; single-iteration numbers
// jitter by multiples, which is exactly the methodology bug this replaces —
// with the run count recorded per benchmark.
//
// The schema is intentionally tiny: the context lines go test prints
// (goos/goarch/pkg/cpu) plus one entry per benchmark with every reported
// metric, custom b.ReportMetric units included. A FAIL anywhere in the
// stream exits non-zero — a baseline must never be refreshed from a failing
// run.
//
// Gating flags (for CI):
//
//	-baseline FILE      compare against a committed benchjson document and
//	                    fail on ns/op regressions beyond -max-regress
//	-gate REGEXP        which benchmarks the baseline comparison covers
//	                    (default AccessPath)
//	-max-regress PCT    allowed ns/op regression percentage (default 25)
//	-zero-allocs REGEXP benchmarks that must report 0 allocs/op
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// benchSchema versions the document; bump on any field change.
const benchSchema = "morphcache-bench/v2"

type doc struct {
	Schema     string            `json:"schema"`
	Context    map[string]string `json:"context,omitempty"`
	Benchmarks []bench           `json:"benchmarks"`
}

type bench struct {
	Name  string `json:"name"`
	Procs int    `json:"procs,omitempty"`
	// Count is the number of runs (-count) aggregated into this entry.
	Count      int   `json:"count"`
	Iterations int64 `json:"iterations"`
	// Metrics maps unit -> value ("ns/op", "B/op", "allocs/op", custom
	// units), each the minimum over the aggregated runs. encoding/json
	// emits map keys sorted, so output is stable.
	Metrics map[string]float64 `json:"metrics"`
}

type options struct {
	baseline   string
	gate       string
	maxRegress float64
	zeroAllocs string
}

func main() {
	var opt options
	flag.StringVar(&opt.baseline, "baseline", "", "committed benchjson document to compare ns/op against")
	flag.StringVar(&opt.gate, "gate", "AccessPath", "regexp of benchmark names the -baseline comparison covers")
	flag.Float64Var(&opt.maxRegress, "max-regress", 25, "allowed ns/op regression percentage against -baseline")
	flag.StringVar(&opt.zeroAllocs, "zero-allocs", "", "regexp of benchmark names that must report 0 allocs/op")
	flag.Parse()
	os.Exit(run(opt, os.Stdin, os.Stdout, os.Stderr))
}

func run(opt options, stdin io.Reader, stdout, stderr io.Writer) int {
	d, err := parse(stdin)
	if err != nil {
		fmt.Fprintln(stderr, "benchjson:", err)
		return 1
	}
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(d); err != nil {
		fmt.Fprintln(stderr, "benchjson:", err)
		return 1
	}
	if err := gateDoc(d, opt); err != nil {
		fmt.Fprintln(stderr, "benchjson:", err)
		return 1
	}
	return 0
}

// gateDoc applies the CI gates to an aggregated document.
func gateDoc(d *doc, opt options) error {
	if opt.zeroAllocs != "" {
		re, err := regexp.Compile(opt.zeroAllocs)
		if err != nil {
			return fmt.Errorf("-zero-allocs: %w", err)
		}
		for _, b := range d.Benchmarks {
			if !re.MatchString(b.Name) {
				continue
			}
			allocs, ok := b.Metrics["allocs/op"]
			if !ok {
				return fmt.Errorf("%s matches -zero-allocs but reports no allocs/op (run with -benchmem)", b.Name)
			}
			if allocs != 0 {
				return fmt.Errorf("%s allocates: %v allocs/op, want 0", b.Name, allocs)
			}
		}
	}
	if opt.baseline == "" {
		return nil
	}
	re, err := regexp.Compile(opt.gate)
	if err != nil {
		return fmt.Errorf("-gate: %w", err)
	}
	raw, err := os.ReadFile(opt.baseline)
	if err != nil {
		return err
	}
	var base doc
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("baseline %s: %w", opt.baseline, err)
	}
	baseNs := map[string]float64{}
	for _, b := range base.Benchmarks {
		if ns, ok := b.Metrics["ns/op"]; ok {
			baseNs[b.Name] = ns
		}
	}
	compared := 0
	for _, b := range d.Benchmarks {
		if !re.MatchString(b.Name) {
			continue
		}
		ns, ok := b.Metrics["ns/op"]
		if !ok {
			continue
		}
		ref, ok := baseNs[b.Name]
		if !ok {
			// New benchmarks have no baseline yet; they gate on the next
			// refresh.
			continue
		}
		compared++
		if limit := ref * (1 + opt.maxRegress/100); ns > limit {
			return fmt.Errorf("%s regressed: %.0f ns/op vs baseline %.0f (>%g%% over)",
				b.Name, ns, ref, opt.maxRegress)
		}
	}
	if compared == 0 {
		return fmt.Errorf("baseline %s has no benchmark matching -gate %q to compare", opt.baseline, opt.gate)
	}
	return nil
}

// parse reads the benchmark text stream. Context lines ("key: value")
// before the first result are kept; PASS/ok trailers are ignored; any FAIL
// line is an error. Repeated results of one benchmark are aggregated to the
// minimum of each metric.
func parse(r io.Reader) (*doc, error) {
	d := &doc{Schema: benchSchema, Benchmarks: []bench{}}
	index := map[string]int{} // "name-procs" -> position in d.Benchmarks
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "Benchmark"):
			b, err := parseResult(line)
			if err != nil {
				return nil, err
			}
			key := fmt.Sprintf("%s-%d", b.Name, b.Procs)
			if i, ok := index[key]; ok {
				merge(&d.Benchmarks[i], b)
			} else {
				index[key] = len(d.Benchmarks)
				d.Benchmarks = append(d.Benchmarks, b)
			}
		case strings.HasPrefix(line, "FAIL"):
			return nil, fmt.Errorf("input stream contains a FAIL line: %q", line)
		case strings.HasPrefix(line, "PASS"), strings.HasPrefix(line, "ok "), strings.HasPrefix(line, "ok\t"):
			// test binary trailers
		default:
			if k, v, ok := strings.Cut(line, ": "); ok && !strings.Contains(k, " ") {
				if d.Context == nil {
					d.Context = map[string]string{}
				}
				d.Context[k] = strings.TrimSpace(v)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(d.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark result lines in input")
	}
	return d, nil
}

// merge folds another run of the same benchmark into the aggregate:
// min-of-N per metric, total run count, iterations from the fastest run.
func merge(into *bench, b bench) {
	into.Count += b.Count
	if ns, ok := b.Metrics["ns/op"]; ok {
		if cur, ok2 := into.Metrics["ns/op"]; !ok2 || ns < cur {
			into.Iterations = b.Iterations
		}
	}
	for unit, v := range b.Metrics {
		if cur, ok := into.Metrics[unit]; !ok || v < cur {
			into.Metrics[unit] = v
		}
	}
}

// parseResult decodes one "BenchmarkName-P  N  v1 u1  v2 u2 ..." line.
func parseResult(line string) (bench, error) {
	f := strings.Fields(line)
	if len(f) < 2 {
		return bench{}, fmt.Errorf("malformed benchmark line %q", line)
	}
	b := bench{Name: f[0], Count: 1, Metrics: map[string]float64{}}
	// The -P suffix is GOMAXPROCS; absent when it is 1 or was overridden.
	if i := strings.LastIndex(b.Name, "-"); i > 0 {
		if p, err := strconv.Atoi(b.Name[i+1:]); err == nil {
			b.Name, b.Procs = b.Name[:i], p
		}
	}
	n, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return bench{}, fmt.Errorf("benchmark line %q: iterations: %w", line, err)
	}
	b.Iterations = n
	rest := f[2:]
	if len(rest)%2 != 0 {
		return bench{}, fmt.Errorf("benchmark line %q: odd value/unit pairing", line)
	}
	for i := 0; i < len(rest); i += 2 {
		v, err := strconv.ParseFloat(rest[i], 64)
		if err != nil {
			return bench{}, fmt.Errorf("benchmark line %q: value %q: %w", line, rest[i], err)
		}
		b.Metrics[rest[i+1]] = v
	}
	return b, nil
}
