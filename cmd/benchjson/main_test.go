package main

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

const sampleStream = `goos: linux
goarch: amd64
pkg: morphcache
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkBatchSweep 	       1	5063608700 ns/op	         2.774 mean-throughput
BenchmarkEpochStep-8 	     120	   9876543 ns/op	  123456 B/op	     789 allocs/op
PASS
ok  	morphcache	5.067s
`

func TestParse(t *testing.T) {
	d, err := parse(strings.NewReader(sampleStream))
	if err != nil {
		t.Fatal(err)
	}
	if d.Schema != benchSchema {
		t.Errorf("schema = %q, want %q", d.Schema, benchSchema)
	}
	wantCtx := map[string]string{
		"goos": "linux", "goarch": "amd64", "pkg": "morphcache",
		"cpu": "Intel(R) Xeon(R) Processor @ 2.70GHz",
	}
	if !reflect.DeepEqual(d.Context, wantCtx) {
		t.Errorf("context = %v, want %v", d.Context, wantCtx)
	}
	want := []bench{
		{Name: "BenchmarkBatchSweep", Iterations: 1,
			Metrics: map[string]float64{"ns/op": 5063608700, "mean-throughput": 2.774}},
		{Name: "BenchmarkEpochStep", Procs: 8, Iterations: 120,
			Metrics: map[string]float64{"ns/op": 9876543, "B/op": 123456, "allocs/op": 789}},
	}
	if !reflect.DeepEqual(d.Benchmarks, want) {
		t.Errorf("benchmarks = %+v, want %+v", d.Benchmarks, want)
	}
}

func TestParseRejectsFailure(t *testing.T) {
	in := "BenchmarkX 1 10 ns/op\nFAIL\nFAIL\tmorphcache\t1.0s\n"
	if _, err := parse(strings.NewReader(in)); err == nil {
		t.Error("parse accepted a FAIL stream")
	}
}

func TestParseRejectsEmpty(t *testing.T) {
	if _, err := parse(strings.NewReader("PASS\nok \tmorphcache\t0.1s\n")); err == nil {
		t.Error("parse accepted a stream with no benchmark lines")
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	for _, in := range []string{
		"BenchmarkX\n",              // no iteration count
		"BenchmarkX 1 10\n",         // value without unit
		"BenchmarkX one 10 ns/op\n", // non-numeric iterations
		"BenchmarkX 1 ten ns/op\n",  // non-numeric value
	} {
		if _, err := parse(strings.NewReader(in)); err == nil {
			t.Errorf("parse accepted malformed input %q", in)
		}
	}
}

func TestRunEmitsDeterministicJSON(t *testing.T) {
	var a, b, errb bytes.Buffer
	if code := run(strings.NewReader(sampleStream), &a, &errb); code != 0 {
		t.Fatalf("run = %d (stderr: %s)", code, errb.String())
	}
	if code := run(strings.NewReader(sampleStream), &b, &errb); code != 0 {
		t.Fatalf("run = %d (stderr: %s)", code, errb.String())
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("same input produced different JSON")
	}
	var d doc
	if err := json.Unmarshal(a.Bytes(), &d); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if len(d.Benchmarks) != 2 {
		t.Errorf("decoded %d benchmarks, want 2", len(d.Benchmarks))
	}
}

func TestRunReportsErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(strings.NewReader("FAIL\n"), &out, &errb); code != 1 {
		t.Errorf("run(FAIL) = %d, want 1", code)
	}
	if errb.Len() == 0 {
		t.Error("failure produced no stderr diagnostics")
	}
}
