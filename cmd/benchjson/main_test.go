package main

import (
	"bytes"
	"encoding/json"
	"os"
	"reflect"
	"strings"
	"testing"
)

const sampleStream = `goos: linux
goarch: amd64
pkg: morphcache
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkBatchSweep 	       1	5063608700 ns/op	         2.774 mean-throughput
BenchmarkEpochStep-8 	     120	   9876543 ns/op	  123456 B/op	     789 allocs/op
PASS
ok  	morphcache	5.067s
`

func TestParse(t *testing.T) {
	d, err := parse(strings.NewReader(sampleStream))
	if err != nil {
		t.Fatal(err)
	}
	if d.Schema != benchSchema {
		t.Errorf("schema = %q, want %q", d.Schema, benchSchema)
	}
	wantCtx := map[string]string{
		"goos": "linux", "goarch": "amd64", "pkg": "morphcache",
		"cpu": "Intel(R) Xeon(R) Processor @ 2.70GHz",
	}
	if !reflect.DeepEqual(d.Context, wantCtx) {
		t.Errorf("context = %v, want %v", d.Context, wantCtx)
	}
	want := []bench{
		{Name: "BenchmarkBatchSweep", Count: 1, Iterations: 1,
			Metrics: map[string]float64{"ns/op": 5063608700, "mean-throughput": 2.774}},
		{Name: "BenchmarkEpochStep", Procs: 8, Count: 1, Iterations: 120,
			Metrics: map[string]float64{"ns/op": 9876543, "B/op": 123456, "allocs/op": 789}},
	}
	if !reflect.DeepEqual(d.Benchmarks, want) {
		t.Errorf("benchmarks = %+v, want %+v", d.Benchmarks, want)
	}
}

func TestParseRejectsFailure(t *testing.T) {
	in := "BenchmarkX 1 10 ns/op\nFAIL\nFAIL\tmorphcache\t1.0s\n"
	if _, err := parse(strings.NewReader(in)); err == nil {
		t.Error("parse accepted a FAIL stream")
	}
}

func TestParseRejectsEmpty(t *testing.T) {
	if _, err := parse(strings.NewReader("PASS\nok \tmorphcache\t0.1s\n")); err == nil {
		t.Error("parse accepted a stream with no benchmark lines")
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	for _, in := range []string{
		"BenchmarkX\n",              // no iteration count
		"BenchmarkX 1 10\n",         // value without unit
		"BenchmarkX one 10 ns/op\n", // non-numeric iterations
		"BenchmarkX 1 ten ns/op\n",  // non-numeric value
	} {
		if _, err := parse(strings.NewReader(in)); err == nil {
			t.Errorf("parse accepted malformed input %q", in)
		}
	}
}

func TestRunEmitsDeterministicJSON(t *testing.T) {
	var a, b, errb bytes.Buffer
	if code := run(options{}, strings.NewReader(sampleStream), &a, &errb); code != 0 {
		t.Fatalf("run = %d (stderr: %s)", code, errb.String())
	}
	if code := run(options{}, strings.NewReader(sampleStream), &b, &errb); code != 0 {
		t.Fatalf("run = %d (stderr: %s)", code, errb.String())
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("same input produced different JSON")
	}
	var d doc
	if err := json.Unmarshal(a.Bytes(), &d); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if len(d.Benchmarks) != 2 {
		t.Errorf("decoded %d benchmarks, want 2", len(d.Benchmarks))
	}
}

func TestRunReportsErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(options{}, strings.NewReader("FAIL\n"), &out, &errb); code != 1 {
		t.Errorf("run(FAIL) = %d, want 1", code)
	}
	if errb.Len() == 0 {
		t.Error("failure produced no stderr diagnostics")
	}
}

const multiRunStream = `pkg: morphcache
BenchmarkAccessPath 	  100000	      1200 ns/op	      64 B/op	       1 allocs/op
BenchmarkAccessPath 	  100000	       900 ns/op	       0 B/op	       0 allocs/op
BenchmarkAccessPath 	  100000	      1100 ns/op	       0 B/op	       0 allocs/op
BenchmarkOther 	      10	 500000 ns/op
PASS
ok  	morphcache	2.0s
`

func TestParseAggregatesMinOfN(t *testing.T) {
	d, err := parse(strings.NewReader(multiRunStream))
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Benchmarks) != 2 {
		t.Fatalf("aggregated to %d benchmarks, want 2", len(d.Benchmarks))
	}
	ap := d.Benchmarks[0]
	if ap.Name != "BenchmarkAccessPath" || ap.Count != 3 {
		t.Fatalf("aggregate = %+v, want BenchmarkAccessPath with count 3", ap)
	}
	if ap.Metrics["ns/op"] != 900 || ap.Metrics["allocs/op"] != 0 || ap.Metrics["B/op"] != 0 {
		t.Fatalf("min-of-N metrics wrong: %v", ap.Metrics)
	}
	if d.Benchmarks[1].Count != 1 {
		t.Fatalf("single-run count = %d, want 1", d.Benchmarks[1].Count)
	}
}

func TestZeroAllocsGate(t *testing.T) {
	var out, errb bytes.Buffer
	in := "BenchmarkAccessPath 10 100 ns/op 8 B/op 1 allocs/op\n"
	if code := run(options{zeroAllocs: "AccessPath"}, strings.NewReader(in), &out, &errb); code != 1 {
		t.Errorf("allocating access path passed the zero-allocs gate (stderr: %s)", errb.String())
	}
	out.Reset()
	errb.Reset()
	in = "BenchmarkAccessPath 10 100 ns/op 0 B/op 0 allocs/op\n"
	if code := run(options{zeroAllocs: "AccessPath"}, strings.NewReader(in), &out, &errb); code != 0 {
		t.Errorf("allocation-free run failed the gate: %s", errb.String())
	}
	// A matching benchmark without -benchmem data must fail loudly, not
	// silently pass.
	out.Reset()
	errb.Reset()
	in = "BenchmarkAccessPath 10 100 ns/op\n"
	if code := run(options{zeroAllocs: "AccessPath"}, strings.NewReader(in), &out, &errb); code != 1 {
		t.Error("missing allocs/op metric passed the zero-allocs gate")
	}
}

func TestBaselineRegressionGate(t *testing.T) {
	base := t.TempDir() + "/base.json"
	baseDoc := `{"schema":"morphcache-bench/v2","benchmarks":[
		{"name":"BenchmarkAccessPath","count":5,"iterations":100000,"metrics":{"ns/op":1000}}]}`
	if err := os.WriteFile(base, []byte(baseDoc), 0o644); err != nil {
		t.Fatal(err)
	}
	gate := func(ns string) int {
		var out, errb bytes.Buffer
		in := "BenchmarkAccessPath 100000 " + ns + " ns/op\n"
		code := run(options{baseline: base, gate: "AccessPath", maxRegress: 25}, strings.NewReader(in), &out, &errb)
		if code != 0 && errb.Len() == 0 {
			t.Error("gate failure produced no stderr diagnostics")
		}
		return code
	}
	if code := gate("1200"); code != 0 {
		t.Error("a 20% regression should pass the 25% gate")
	}
	if code := gate("1300"); code != 1 {
		t.Error("a 30% regression must fail the 25% gate")
	}
	if code := gate("600"); code != 0 {
		t.Error("an improvement must pass")
	}
	// A baseline with no matching benchmark is a misconfiguration, not a
	// pass.
	var out, errb bytes.Buffer
	in := "BenchmarkUnrelated 10 100 ns/op\n"
	if code := run(options{baseline: base, gate: "Unrelated", maxRegress: 25}, strings.NewReader(in), &out, &errb); code != 1 {
		t.Error("comparison with zero matches must fail")
	}
}
