package morphcache

import (
	"reflect"
	"testing"
)

// TestTelemetryDeterministicAcrossWorkers checks the golden-gate invariant
// at the facade level: with telemetry on, the per-run epoch logs (records
// AND reconfiguration events) are identical whether the batch runs
// sequentially or on a worker pool. Each job writes to its own recorder, so
// there is no ordering to get wrong — this pins that property.
func TestTelemetryDeterministicAcrossWorkers(t *testing.T) {
	cfg := batchTestConfig()
	cfg.Telemetry = true
	specs := fig13Specs([]string{"MIX 01", "MIX 05"})

	seq, err := RunBatch(cfg, specs, BatchOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunBatch(cfg, specs, BatchOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := range specs {
		if seq[i].Telemetry == nil || par[i].Telemetry == nil {
			t.Fatalf("spec %d: telemetry missing (seq=%v par=%v)",
				i, seq[i].Telemetry != nil, par[i].Telemetry != nil)
		}
		if !reflect.DeepEqual(seq[i].Telemetry, par[i].Telemetry) {
			t.Errorf("spec %d (%s on %s): epoch log differs between -jobs 1 and -jobs 4",
				i, specs[i].Policy, specs[i].Workload)
		}
	}
}

// TestTelemetryEpochLogShape checks the record structure of one run: every
// epoch (warmup included) gets a record, warmup records are flagged, counters
// are populated, and the MorphCache run reports at least one reconfiguration
// event with its decision inputs.
func TestTelemetryEpochLogShape(t *testing.T) {
	cfg := batchTestConfig()
	cfg.Telemetry = true
	res, err := RunMorphCache(cfg, Mix("MIX 01"))
	if err != nil {
		t.Fatal(err)
	}
	tl := res.Telemetry
	if tl == nil {
		t.Fatal("Config.Telemetry=true but Result.Telemetry is nil")
	}
	if want := cfg.Epochs + cfg.WarmupEpochs; len(tl.Epochs) != want {
		t.Fatalf("log has %d epoch records, want %d (measured + warmup)", len(tl.Epochs), want)
	}
	for i, e := range tl.Epochs {
		if e.Epoch != i {
			t.Errorf("record %d has Epoch=%d", i, e.Epoch)
		}
		if got, want := e.Warmup, i < cfg.WarmupEpochs; got != want {
			t.Errorf("record %d: Warmup=%v, want %v", i, got, want)
		}
		if len(e.Cores) != cfg.Cores {
			t.Errorf("record %d has %d core entries, want %d", i, len(e.Cores), cfg.Cores)
		}
		if e.Topology == "" {
			t.Errorf("record %d has no topology", i)
		}
		if e.Bus == nil {
			t.Errorf("record %d has no bus counters", i)
		}
		var instr uint64
		for _, c := range e.Cores {
			instr += c.Instructions
		}
		if instr == 0 {
			t.Errorf("record %d retired no instructions", i)
		}
	}
	if len(tl.Reconfigs) == 0 {
		t.Fatal("MorphCache run recorded no reconfiguration events")
	}
	for _, ev := range tl.Reconfigs {
		if ev.Op != "merge" && ev.Op != "split" {
			t.Errorf("event op = %q", ev.Op)
		}
		if ev.Rule == "" {
			t.Errorf("event has no rule: %+v", ev)
		}
		if ev.Level != "L2" && ev.Level != "L3" {
			t.Errorf("event level = %q", ev.Level)
		}
		if ev.MSATHigh == 0 || ev.MSATLow == 0 {
			t.Errorf("event carries no MSAT thresholds: %+v", ev)
		}
		if ev.Epoch < 0 || ev.Epoch >= cfg.Epochs+cfg.WarmupEpochs {
			t.Errorf("event epoch %d out of range", ev.Epoch)
		}
	}
}

// TestTelemetryOffByDefault checks both that the default config records
// nothing and that enabling telemetry does not change results.
func TestTelemetryOffByDefault(t *testing.T) {
	cfg := batchTestConfig()
	plain, err := RunMorphCache(cfg, Mix("MIX 01"))
	if err != nil {
		t.Fatal(err)
	}
	if plain.Telemetry != nil {
		t.Error("telemetry log present without Config.Telemetry")
	}
	cfg.Telemetry = true
	instrumented, err := RunMorphCache(cfg, Mix("MIX 01"))
	if err != nil {
		t.Fatal(err)
	}
	instrumented.Telemetry = nil
	if !reflect.DeepEqual(plain, instrumented) {
		t.Error("enabling telemetry changed simulation results")
	}
}
