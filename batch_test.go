package morphcache

import (
	"reflect"
	"runtime"
	"testing"

	"morphcache/internal/core"
)

// batchTestConfig is a reduced configuration that keeps the sweep fast.
func batchTestConfig() Config {
	c := LabConfig()
	c.Epochs = 4
	c.WarmupEpochs = 1
	c.EpochCycles = 200_000
	return c
}

// fig13Specs enumerates a reduced Fig. 13-style sweep: each mix under the
// static comparison set plus MorphCache, exactly the job shape
// cmd/experiments submits.
func fig13Specs(mixes []string) []RunSpec {
	var specs []RunSpec
	for _, mn := range mixes {
		w := Mix(mn)
		for _, s := range []string{"(16:1:1)", "(4:4:1)"} {
			specs = append(specs, RunSpec{Policy: s, Workload: w})
		}
		specs = append(specs, RunSpec{Policy: "morph", Workload: w})
	}
	return specs
}

// TestRunBatchDeterministicAcrossWorkers asserts the DESIGN.md §6 invariant
// across worker counts: a Fig. 13-style sweep must produce identical
// metrics for -jobs 1, -jobs 4, and -jobs GOMAXPROCS with the same seed.
func TestRunBatchDeterministicAcrossWorkers(t *testing.T) {
	cfg := batchTestConfig()
	specs := fig13Specs([]string{"MIX 01", "MIX 05"})

	ref, err := RunBatch(cfg, specs, BatchOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(ref) != len(specs) {
		t.Fatalf("%d results for %d specs", len(ref), len(specs))
	}

	workerCounts := []int{4, runtime.GOMAXPROCS(0)}
	for _, workers := range workerCounts {
		got, err := RunBatch(cfg, specs, BatchOptions{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range specs {
			if !reflect.DeepEqual(ref[i], got[i]) {
				t.Errorf("workers=%d: job %d (%s) diverges from sequential run:\nseq: %+v\npar: %+v",
					workers, i, specs[i].Label(), ref[i], got[i])
			}
		}
	}
}

// TestRunBatchMatchesDirectCalls asserts batch results are identical to the
// corresponding direct facade calls (the refactor must not change any
// number anywhere).
func TestRunBatchMatchesDirectCalls(t *testing.T) {
	cfg := batchTestConfig()
	w := Mix("MIX 08")
	specs := []RunSpec{
		{Policy: "(16:1:1)", Workload: w},
		{Policy: "morph", Workload: w},
		{Policy: "pipp", Workload: w},
		{Policy: "dsr", Workload: w},
	}
	batch, err := RunBatch(cfg, specs, BatchOptions{Workers: len(specs)})
	if err != nil {
		t.Fatal(err)
	}
	static, err := RunStatic(cfg, "(16:1:1)", w)
	if err != nil {
		t.Fatal(err)
	}
	morph, err := RunMorphCache(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	pipp, err := RunPIPP(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	dsr, err := RunDSR(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []*Result{static, morph, pipp, dsr} {
		if !reflect.DeepEqual(want, batch[i]) {
			t.Errorf("job %d (%s) differs from the direct call", i, specs[i].Label())
		}
	}
}

// TestRunBatchOverrides checks per-job Config and Morph overrides take
// effect and leave the batch config untouched.
func TestRunBatchOverrides(t *testing.T) {
	cfg := batchTestConfig()
	seeded := cfg
	seeded.Seed = 7
	qos := core.DefaultOptions()
	qos.QoS = true
	w := Mix("MIX 05")
	specs := []RunSpec{
		{Policy: "morph", Workload: w},
		{Policy: "morph", Workload: w, Config: &seeded},
		{Policy: "morph", Workload: w, Morph: &qos},
	}
	res, err := RunBatch(cfg, specs, BatchOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(res[0], res[1]) {
		t.Error("seed override had no effect")
	}
	direct, err := RunMorphCache(seeded, w)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(direct, res[1]) {
		t.Error("config override diverges from direct call with that config")
	}
	if res[2].Policy == "" {
		t.Error("missing policy label on morph-options job")
	}
}

// TestRunBatchErrorLabel checks a failing spec surfaces with its label and
// does not torpedo determinism of the rest.
func TestRunBatchErrorLabel(t *testing.T) {
	cfg := batchTestConfig()
	specs := []RunSpec{
		{Policy: "(16:1:1)", Workload: Mix("MIX 01")},
		{Policy: "(16:1:1)", Workload: Mix("NO SUCH MIX")},
	}
	_, err := RunBatch(cfg, specs, BatchOptions{Workers: 2})
	if err == nil {
		t.Fatal("unknown mix must fail the batch")
	}
}
