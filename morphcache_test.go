package morphcache

import (
	"testing"

	"morphcache/internal/core"
)

// fastConfig keeps integration tests quick: 4 measured epochs.
func fastConfig() Config {
	c := LabConfig()
	c.Epochs = 4
	c.WarmupEpochs = 1
	c.EpochCycles = 200_000
	return c
}

func TestRunStaticFacade(t *testing.T) {
	r, err := RunStatic(fastConfig(), "(16:1:1)", Mix("MIX 01"))
	if err != nil {
		t.Fatal(err)
	}
	if r.Throughput <= 0 || len(r.PerCoreIPC) != 16 || len(r.EpochThroughputs) != 4 {
		t.Fatalf("result %+v", r)
	}
	if r.Reconfigurations != 0 {
		t.Fatal("statics must not reconfigure")
	}
}

func TestRunMorphCacheFacade(t *testing.T) {
	r, ctrl, err := RunMorphCacheWithController(fastConfig(), Mix("MIX 05"))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.EpochTopologies) != 4 {
		t.Fatalf("topologies %v", r.EpochTopologies)
	}
	if ctrl.Merges()+ctrl.Splits() < r.Reconfigurations {
		t.Fatal("controller counters must cover reported reconfigurations")
	}
}

func TestParsecWorkload(t *testing.T) {
	r, err := RunStatic(fastConfig(), "(1:16:1)", Parsec("dedup"))
	if err != nil {
		t.Fatal(err)
	}
	if r.Throughput <= 0 {
		t.Fatal("no progress")
	}
}

func TestWorkloadErrors(t *testing.T) {
	if _, err := RunStatic(fastConfig(), "(16:1:1)", Parsec("gcc")); err == nil {
		t.Fatal("SPEC name under Parsec() must error")
	}
	if _, err := RunStatic(fastConfig(), "(16:1:1)", Mix("MIX 99")); err == nil {
		t.Fatal("unknown mix must error")
	}
	if _, err := RunStatic(fastConfig(), "(3:3:3)", Mix("MIX 01")); err == nil {
		t.Fatal("invalid topology spec must error")
	}
}

func TestDeterministicFacade(t *testing.T) {
	a, err := RunMorphCache(fastConfig(), Mix("MIX 02"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunMorphCache(fastConfig(), Mix("MIX 02"))
	if err != nil {
		t.Fatal(err)
	}
	if a.Throughput != b.Throughput || a.Reconfigurations != b.Reconfigurations {
		t.Fatalf("non-deterministic: %v/%d vs %v/%d",
			a.Throughput, a.Reconfigurations, b.Throughput, b.Reconfigurations)
	}
}

func TestPIPPAndDSRFacade(t *testing.T) {
	cfg := fastConfig()
	w := Mix("MIX 08")
	p, err := RunPIPP(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	d, err := RunDSR(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	if p.Throughput <= 0 || d.Throughput <= 0 {
		t.Fatal("baseline runs made no progress")
	}
}

func TestIdealOfflineFacade(t *testing.T) {
	cfg := fastConfig()
	w := Mix("MIX 01")
	var results []*Result
	for _, s := range []string{"(16:1:1)", "(1:1:16)"} {
		r, err := RunStatic(cfg, s, w)
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, r)
	}
	series, choice, mean, err := IdealOffline(results)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 4 || len(choice) != 4 || mean <= 0 {
		t.Fatalf("ideal %v %v %v", series, choice, mean)
	}
	for e := range series {
		for _, r := range results {
			if series[e] < r.EpochThroughputs[e] {
				t.Fatal("envelope below a candidate")
			}
		}
	}
}

func TestSpeedupsFacade(t *testing.T) {
	cfg := fastConfig()
	w := Mix("MIX 01")
	alone, err := SoloIPCs(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	if len(alone) != 16 {
		t.Fatalf("%d alone IPCs", len(alone))
	}
	r, err := RunStatic(cfg, "(1:1:16)", w)
	if err != nil {
		t.Fatal(err)
	}
	ws := WeightedSpeedup(r, alone)
	fs := FairSpeedup(r, alone)
	if ws <= 0 || ws > 16 || fs <= 0 || fs > 1.5 {
		t.Fatalf("WS=%v FS=%v out of plausible range", ws, fs)
	}
	if _, err := SoloIPCs(cfg, Parsec("dedup")); err == nil {
		t.Fatal("SoloIPCs needs a mix")
	}
}

func TestStandardStatics(t *testing.T) {
	c := LabConfig()
	if len(StandardStatics(c)) < 5 {
		t.Fatal("16-core statics")
	}
	c.Cores = 8
	for _, s := range StandardStatics(c) {
		if _, err := RunStatic(fastConfig8(c), s, Mix("MIX 01")); err != nil {
			t.Fatalf("8-core static %s: %v", s, err)
		}
	}
}

func fastConfig8(c Config) Config {
	c.Epochs = 2
	c.WarmupEpochs = 1
	c.EpochCycles = 100_000
	return c
}

func TestQoSOption(t *testing.T) {
	cfg := fastConfig()
	cfg.Morph = core.DefaultOptions()
	cfg.Morph.QoS = true
	if _, err := RunMorphCache(cfg, Mix("MIX 03")); err != nil {
		t.Fatal(err)
	}
}

// TestMorphBeatsOrMatchesPrivate is the headline sanity check: MorphCache
// starts private, so with working reconfiguration it must not lose much to
// the private static, and typically wins.
func TestMorphBeatsOrMatchesPrivate(t *testing.T) {
	cfg := LabConfig()
	cfg.Epochs = 8
	cfg.WarmupEpochs = 2
	w := Mix("MIX 05")
	private, err := RunStatic(cfg, "(1:1:16)", w)
	if err != nil {
		t.Fatal(err)
	}
	morph, err := RunMorphCache(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	if morph.Throughput < 0.97*private.Throughput {
		t.Fatalf("MorphCache %.3f far below private %.3f", morph.Throughput, private.Throughput)
	}
}

func TestConfigVariants(t *testing.T) {
	p := PaperConfig()
	if p.Scale != 1 {
		t.Fatal("PaperConfig should be full scale")
	}
	if p.Params().L2SliceBytes != 256<<10 {
		t.Fatalf("full-scale L2 %d", p.Params().L2SliceBytes)
	}
	if Mix("MIX 01").String() != "MIX 01" || Parsec("dedup").String() != "dedup" {
		t.Fatal("workload String")
	}
	// Full-scale generators build (no run: too slow).
	if _, err := Mix("MIX 01").Generators(p); err != nil {
		t.Fatal(err)
	}
}
