// Multithreaded study: run a PARSEC application with 16 threads under the
// static topologies and MorphCache, and watch the controller discover the
// sharing structure — a miniature of the paper's Figs. 2(b)/16.
//
//	go run ./examples/multithreaded -app dedup
package main

import (
	"flag"
	"fmt"
	"log"

	mc "morphcache"
)

func main() {
	app := flag.String("app", "dedup", "PARSEC benchmark (dedup, freqmine, streamcluster, ...)")
	epochs := flag.Int("epochs", 12, "measured epochs")
	flag.Parse()

	cfg := mc.LabConfig()
	cfg.Epochs = *epochs
	w := mc.Parsec(*app)

	fmt.Printf("%s with 16 threads (one address space, %d epochs)\n\n", *app, *epochs)
	fmt.Printf("%-12s %12s\n", "topology", "throughput")
	var base float64
	for _, spec := range mc.StandardStatics(cfg) {
		r, err := mc.RunStatic(cfg, spec, w)
		if err != nil {
			log.Fatal(err)
		}
		if base == 0 {
			base = r.Throughput
		}
		fmt.Printf("%-12s %7.3f (%.2fx)\n", spec, r.Throughput, r.Throughput/base)
	}

	morph, ctrl, err := mc.RunMorphCacheWithController(cfg, w)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-12s %7.3f (%.2fx)\n", "MorphCache", morph.Throughput, morph.Throughput/base)

	fmt.Printf("\nMorphCache merged %d times / split %d times; topology evolution:\n",
		ctrl.Merges(), ctrl.Splits())
	prev := ""
	for e, t := range morph.EpochTopologies {
		if t != prev {
			fmt.Printf("  epoch %2d: %s\n", e, t)
			prev = t
		}
	}
	fmt.Println("\nthe controller detects the threads' shared footprint (ACFV overlap,")
	fmt.Println("merge rule ii) and merges toward a shared L3 while the L2 sharing")
	fmt.Println("degree is bounded by the bandwidth-scaled overlap bar.")
}
