// QoS study (§5.3): the default merge-aggressive policy maximizes
// aggregate throughput but can push an individual application below the
// performance of its fair share (a private slice). With QoS throttling the
// controller raises the MSAT after any merge that increased a core's
// misses, retreating toward a private configuration for the hurt
// applications.
//
//	go run ./examples/qos -mix "MIX 08"
package main

import (
	"flag"
	"fmt"
	"log"

	mc "morphcache"

	"morphcache/internal/core"
)

func main() {
	mixName := flag.String("mix", "MIX 08", "Table 5 mix")
	epochs := flag.Int("epochs", 12, "measured epochs")
	flag.Parse()

	cfg := mc.LabConfig()
	cfg.Epochs = *epochs
	w := mc.Mix(*mixName)

	// Fair-share reference: each application on its private slice within
	// the same mix (isolates cache-policy damage from the shared memory
	// bandwidth no policy can change).
	fair, err := mc.RunStatic(cfg, "(1:1:16)", w)
	if err != nil {
		log.Fatal(err)
	}
	alone := fair.PerCoreIPC

	run := func(qos bool) (*mc.Result, *core.Controller) {
		c := cfg
		c.Morph = core.DefaultOptions()
		c.Morph.QoS = qos
		r, ctrl, err := mc.RunMorphCacheWithController(c, w)
		if err != nil {
			log.Fatal(err)
		}
		return r, ctrl
	}
	def, _ := run(false)
	qosRes, qosCtrl := run(true)

	fmt.Printf("%s: per-application speedup vs fair share (private slice in the same mix)\n\n", *mixName)
	fmt.Printf("%-6s %12s %12s\n", "core", "default", "qos")
	worstD, worstQ := 1e9, 1e9
	for i := range alone {
		d := def.PerCoreIPC[i] / alone[i]
		q := qosRes.PerCoreIPC[i] / alone[i]
		mark := "  "
		if d < 1 {
			mark = " *" // below fair share under the default policy
		}
		fmt.Printf("%-6d %12.3f %12.3f%s\n", i, d, q, mark)
		if d < worstD {
			worstD = d
		}
		if q < worstQ {
			worstQ = q
		}
	}
	fmt.Printf("\nworst-case speedup: %.3f default vs %.3f with QoS\n", worstD, worstQ)
	fmt.Printf("aggregate throughput: %.3f default vs %.3f with QoS\n", def.Throughput, qosRes.Throughput)
	h := qosCtrl.MSATBounds()
	fmt.Printf("final throttled MSAT: high=%.2f low=%.2f (start: high=%.2f low=%.2f)\n",
		h.High, h.Low, core.DefaultMSAT().High, core.DefaultMSAT().Low)
}
