// Quickstart: run one multiprogrammed mix under MorphCache and under the
// all-shared static baseline, and compare throughput.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	mc "morphcache"
)

func main() {
	// LabConfig is the calibrated 16-core configuration used by all the
	// paper-reproduction experiments. Shrink the epoch count for a fast
	// first contact with the simulator.
	cfg := mc.LabConfig()
	cfg.Epochs = 8

	workload := mc.Mix("MIX 01") // Table 5: 16 SPEC applications, one per core

	baseline, err := mc.RunStatic(cfg, "(16:1:1)", workload)
	if err != nil {
		log.Fatal(err)
	}
	morph, ctrl, err := mc.RunMorphCacheWithController(cfg, workload)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload %s on a 16-core CMP (%d measured epochs)\n\n", workload, cfg.Epochs)
	fmt.Printf("all-shared (16:1:1) throughput: %.3f IPC\n", baseline.Throughput)
	fmt.Printf("MorphCache          throughput: %.3f IPC  (%+.1f%%)\n",
		morph.Throughput, 100*(morph.Throughput/baseline.Throughput-1))
	fmt.Printf("\nMorphCache performed %d merges and %d splits;\n", ctrl.Merges(), ctrl.Splits())
	fmt.Println("topology at each epoch:")
	for e, t := range morph.EpochTopologies {
		fmt.Printf("  epoch %2d: %s\n", e, t)
	}
}
