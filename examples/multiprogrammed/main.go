// Multiprogrammed study: compare MorphCache with every static topology and
// with the PIPP and DSR baselines on one Table 5 mix, including the
// weighted/fair speedup metrics — a miniature of the paper's Figs. 13/14/17.
//
//	go run ./examples/multiprogrammed -mix "MIX 05"
package main

import (
	"flag"
	"fmt"
	"log"

	mc "morphcache"
)

func main() {
	mixName := flag.String("mix", "MIX 05", `Table 5 mix ("MIX 01" .. "MIX 12")`)
	epochs := flag.Int("epochs", 12, "measured epochs")
	flag.Parse()

	cfg := mc.LabConfig()
	cfg.Epochs = *epochs
	w := mc.Mix(*mixName)

	// Per-application alone-IPC references (each benchmark on a private
	// single-core hierarchy) for the speedup metrics.
	fmt.Println("measuring per-application alone IPCs...")
	alone, err := mc.SoloIPCs(cfg, w)
	if err != nil {
		log.Fatal(err)
	}

	type entry struct {
		name string
		run  func() (*mc.Result, error)
	}
	entries := []entry{}
	for _, s := range mc.StandardStatics(cfg) {
		spec := s
		entries = append(entries, entry{spec, func() (*mc.Result, error) { return mc.RunStatic(cfg, spec, w) }})
	}
	entries = append(entries,
		entry{"PIPP", func() (*mc.Result, error) { return mc.RunPIPP(cfg, w) }},
		entry{"DSR", func() (*mc.Result, error) { return mc.RunDSR(cfg, w) }},
		entry{"MorphCache", func() (*mc.Result, error) { return mc.RunMorphCache(cfg, w) }},
	)

	fmt.Printf("\n%s: throughput and speedup metrics (%d epochs)\n\n", *mixName, *epochs)
	fmt.Printf("%-12s %12s %10s %10s\n", "policy", "throughput", "WS", "FS")
	var base float64
	for _, e := range entries {
		r, err := e.run()
		if err != nil {
			log.Fatal(err)
		}
		if base == 0 {
			base = r.Throughput
		}
		fmt.Printf("%-12s %7.3f (%.2fx) %10.3f %10.3f\n",
			e.name, r.Throughput, r.Throughput/base,
			mc.WeightedSpeedup(r, alone), mc.FairSpeedup(r, alone))
	}
}
